//! Epoch-based snapshot store with component-scoped incremental
//! commits: serve queries while rebuilding only what changed.
//!
//! The store keeps the current [`Snapshot`] behind an `Arc`. Readers
//! call [`IndexStore::load`] and query the snapshot they got — they
//! hold it for as long as they like and are never blocked, even while
//! a writer rebuilds (the classic read-copy-update discipline: old
//! epochs stay alive until the last reader drops its `Arc`). Writers
//! open a transaction with [`IndexStore::begin`], stage edge updates
//! on the [`Txn`], and publish a new epoch with [`Txn::commit`].
//!
//! # Reader hand-off
//!
//! Publication goes through a small ring of slots rather than one
//! `RwLock`'d cell: the writer installs the next epoch into the slot
//! *after* the current head, then advances the head index with a
//! release store. A reader picks the head slot and clones the `Arc`
//! inside — the only mutual exclusion is a per-slot mutex whose
//! critical section is a single pointer clone, and reader and writer
//! only meet on the same slot if the writer laps the entire ring
//! between the reader's head load and its clone (and even then the
//! reader just gets a *newer* snapshot). `load` is therefore
//! wait-free in practice: no reader ever waits for a rebuild, and
//! concurrent readers never serialize behind one another on a shared
//! writer lock. [`IndexStore::latest_epoch`] reads the freshest
//! published epoch number without touching the ring at all, which is
//! what the serving layer uses to measure snapshot lag.
//!
//! # Component-scoped commits
//!
//! Biconnectivity is local to connected components, so a commit only
//! rebuilds the components its batch touches. The batch is folded to
//! its net per-edge effect, the touched components (including merges
//! from cross-component inserts and splits from removals) are
//! collected into a *region*, the region is extracted as a relabeled
//! subgraph ([`Graph::split_by_labels`]) and pushed through the same
//! per-component pipeline unit a full build uses
//! ([`bcc_core::component_pipeline`], sharing the store's
//! [`BccWorkspace`] arena) — and every untouched component's
//! [`ComponentIndex`](crate::ComponentIndex) is carried into the new
//! snapshot's composite index by `Arc`, verbatim. The cost of a commit
//! is proportional to the affected region, not the graph; each
//! snapshot's [`CommitStats`] records exactly how much was rebuilt
//! versus reused. [`Txn::commit_full`] forces the old
//! whole-graph rebuild (the benchmark baseline, and an escape hatch).

use crate::index::BiconnectivityIndex;
use bcc_core::{Algorithm, BccConfig, BccError};
use bcc_graph::{Edge, Graph, GraphBuilder};
use bcc_smp::{BccWorkspace, Pool, NIL};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One staged update: an edge appears or disappears.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Add the edge `{u, v}` (grows the vertex set if needed; self
    /// loops and duplicates are ignored).
    Insert(u32, u32),
    /// Remove the edge `{u, v}` (a no-op if absent; vertices remain).
    Remove(u32, u32),
}

/// What one commit did: how much of the index was rebuilt and how much
/// rode over from the previous epoch untouched. Recorded on every
/// [`Snapshot`]; the `store_commit` benchmark cells aggregate these.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CommitStats {
    /// Updates in the committed batch (before net folding).
    pub batch: usize,
    /// Edges actually added (absent before, present after).
    pub inserts: usize,
    /// Edges actually removed (present before, absent after).
    pub removes: usize,
    /// Connected components rebuilt through the pipeline (isolated
    /// vertices included).
    pub components_rebuilt: u32,
    /// Components whose index was reused by pointer from the previous
    /// epoch.
    pub components_reused: u32,
    /// Vertices inside the rebuilt region.
    pub vertices_rebuilt: u32,
    /// Edges inside the rebuilt region.
    pub edges_rebuilt: usize,
    /// Fraction of vertices *not* rebuilt: `1 − vertices_rebuilt / n`.
    pub reused_fraction: f64,
    /// True for whole-graph rebuilds (epoch 0, [`Txn::commit_full`]).
    pub full_rebuild: bool,
    /// Wall-clock time the commit itself took (fold + classify +
    /// rebuild + publish), measured under the commit lock. Serving
    /// layers attribute per-shard commit latency from this without
    /// timing around the call.
    pub seconds: f64,
}

impl CommitStats {
    /// `self` with [`seconds`](CommitStats::seconds) stamped from an
    /// elapsed duration (builder-style; used at publish time).
    pub(crate) fn timed(mut self, elapsed: Duration) -> CommitStats {
        self.seconds = elapsed.as_secs_f64();
        self
    }
}

/// An immutable published epoch: the graph as of the last commit, the
/// index serving it, and what that commit cost.
pub struct Snapshot {
    /// Monotonic epoch counter, 0 for the initial build.
    pub epoch: u64,
    /// The graph this epoch was built from.
    pub graph: Graph,
    /// The query index over `graph`.
    pub index: BiconnectivityIndex,
    /// What the commit that published this epoch rebuilt.
    pub stats: CommitStats,
    /// When this epoch was published.
    created: Instant,
}

impl Snapshot {
    /// Monotonic epoch counter, 0 for the initial build (accessor form
    /// of the public field, for callers generic over snapshot-like
    /// types).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The instant this epoch was published.
    pub fn created_at(&self) -> Instant {
        self.created
    }

    /// Wall-clock age of this snapshot: how long ago it was published.
    /// Together with [`IndexStore::latest_epoch`] this is the
    /// snapshot-lag a serving reader reports per answer.
    pub fn age(&self) -> Duration {
        self.created.elapsed()
    }
}

/// Number of slots in the publication ring. Any value ≥ 2 is correct
/// (see the module docs); 8 keeps a writer from lapping readers even
/// under pathological commit rates.
const PUBLISH_SLOTS: usize = 8;

/// The publication side of the store: a ring of recent snapshots plus
/// the freshest epoch number, written only under the commit lock.
struct PublishRing {
    slots: Box<[Mutex<Arc<Snapshot>>]>,
    head: AtomicUsize,
    latest_epoch: AtomicU64,
}

impl PublishRing {
    fn new(initial: Arc<Snapshot>) -> Self {
        let epoch = initial.epoch;
        PublishRing {
            slots: (0..PUBLISH_SLOTS)
                .map(|_| Mutex::new(Arc::clone(&initial)))
                .collect(),
            head: AtomicUsize::new(0),
            latest_epoch: AtomicU64::new(epoch),
        }
    }

    fn load(&self) -> Arc<Snapshot> {
        let head = self.head.load(Ordering::Acquire);
        Arc::clone(&self.slots[head % PUBLISH_SLOTS].lock().unwrap())
    }

    /// Caller holds the store's commit lock (single writer).
    fn publish(&self, next: &Arc<Snapshot>) {
        let head = self.head.load(Ordering::Relaxed) + 1;
        *self.slots[head % PUBLISH_SLOTS].lock().unwrap() = Arc::clone(next);
        self.head.store(head, Ordering::Release);
        self.latest_epoch.store(next.epoch, Ordering::Release);
    }
}

/// A write transaction: stage updates, then [`commit`](Txn::commit)
/// them as one atomic epoch. Obtained from [`IndexStore::begin`];
/// dropping a transaction without committing discards its updates.
/// Transactions stage independently — only `commit` serializes against
/// other writers.
#[must_use = "a transaction does nothing until committed"]
pub struct Txn<'a> {
    store: &'a IndexStore,
    updates: Vec<EdgeUpdate>,
}

impl Txn<'_> {
    /// Stages an edge insertion (grows the vertex set if needed; self
    /// loops and duplicates are ignored at commit).
    pub fn insert(&mut self, u: u32, v: u32) -> &mut Self {
        self.updates.push(EdgeUpdate::Insert(u, v));
        self
    }

    /// Stages an edge removal (a no-op at commit if the edge is
    /// absent; vertices remain).
    pub fn remove(&mut self, u: u32, v: u32) -> &mut Self {
        self.updates.push(EdgeUpdate::Remove(u, v));
        self
    }

    /// Stages one prebuilt update.
    pub fn push(&mut self, update: EdgeUpdate) -> &mut Self {
        self.updates.push(update);
        self
    }

    /// Stages a whole batch of prebuilt updates.
    pub fn extend(&mut self, updates: impl IntoIterator<Item = EdgeUpdate>) -> &mut Self {
        self.updates.extend(updates);
        self
    }

    /// Number of staged updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The staged updates, in order.
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Applies the staged updates and publishes the next epoch,
    /// rebuilding only the touched components; returns the new
    /// snapshot. An empty transaction is a no-op returning the current
    /// snapshot. On a rebuild error the previous epoch stays published
    /// and nothing is lost — the failed batch was owned by this
    /// (consumed) transaction.
    pub fn commit(self) -> Result<Arc<Snapshot>, BccError> {
        self.store.commit_updates(&self.updates, false)
    }

    /// Like [`commit`](Txn::commit) but rebuilds the whole index from
    /// scratch regardless of what the batch touches. The benchmark
    /// baseline, and an escape hatch if incremental state is ever in
    /// doubt.
    pub fn commit_full(self) -> Result<Arc<Snapshot>, BccError> {
        self.store.commit_updates(&self.updates, true)
    }
}

/// A long-lived store publishing [`Snapshot`]s of a mutating graph.
pub struct IndexStore {
    pool: Pool,
    current: PublishRing,
    /// Serializes commits so concurrent writers cannot lose each
    /// other's updates; readers never take this.
    commit_lock: Mutex<()>,
    /// One pipeline scratch arena shared across every rebuild: after
    /// the first commit, reconstruction runs in its zero-allocation
    /// steady state (commits are serialized by `commit_lock`, so the
    /// arena never sees two rebuilds at once).
    workspace: Arc<BccWorkspace>,
    /// Labeling algorithm used by every rebuild (full and incremental).
    algorithm: Algorithm,
}

impl IndexStore {
    /// Builds epoch 0 from `g` and takes ownership of the pool used
    /// for every rebuild. Fails if the initial index build does.
    /// Rebuilds run TV-filter; use
    /// [`with_algorithm`](IndexStore::with_algorithm) to choose.
    pub fn new(pool: Pool, g: Graph) -> Result<Self, BccError> {
        Self::with_algorithm(pool, g, Algorithm::TvFilter)
    }

    /// [`new`](IndexStore::new) with an explicit labeling [`Algorithm`]
    /// for every rebuild. All algorithms produce identical canonical
    /// labels; [`Algorithm::FastBcc`] bounds each rebuild's auxiliary
    /// space by O(n) — the choice for stores whose graphs dwarf the
    /// n=50k grid.
    pub fn with_algorithm(pool: Pool, g: Graph, algorithm: Algorithm) -> Result<Self, BccError> {
        let t0 = Instant::now();
        let workspace = Arc::new(BccWorkspace::new());
        let index = BiconnectivityIndex::from_graph_with(&pool, &g, algorithm, &workspace)?;
        let stats = CommitStats {
            batch: 0,
            inserts: 0,
            removes: 0,
            components_rebuilt: index.num_components(),
            components_reused: 0,
            vertices_rebuilt: g.n(),
            edges_rebuilt: g.m(),
            reused_fraction: 0.0,
            full_rebuild: true,
            seconds: 0.0,
        }
        .timed(t0.elapsed());
        Ok(IndexStore {
            pool,
            current: PublishRing::new(Arc::new(Snapshot {
                epoch: 0,
                graph: g,
                index,
                stats,
                created: Instant::now(),
            })),
            commit_lock: Mutex::new(()),
            workspace,
            algorithm,
        })
    }

    /// Opens a write transaction. Stage updates on it, then
    /// [`Txn::commit`].
    pub fn begin(&self) -> Txn<'_> {
        Txn {
            store: self,
            updates: Vec::new(),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone from the
    /// publication ring — readers never wait on a rebuild; see the
    /// module docs); hold the result as long as needed.
    pub fn load(&self) -> Arc<Snapshot> {
        self.current.load()
    }

    /// The freshest published epoch number — one atomic load, no ring
    /// traffic. `latest_epoch() - snap.epoch` is a snapshot's lag in
    /// commits; see [`lag_of`](IndexStore::lag_of).
    pub fn latest_epoch(&self) -> u64 {
        self.current.latest_epoch.load(Ordering::Acquire)
    }

    /// How many commits behind the latest published epoch `snap` is
    /// (saturating: a snapshot loaded *after* the epoch counter was
    /// read can only make the lag smaller, never negative).
    pub fn lag_of(&self, snap: &Snapshot) -> u64 {
        self.latest_epoch().saturating_sub(snap.epoch)
    }

    /// Cumulative hit/miss counters of the rebuild arena (for tests
    /// and telemetry).
    pub fn workspace_stats(&self) -> bcc_smp::WorkspaceStats {
        self.workspace.stats()
    }

    /// Caps the rebuild arena's shelved capacity at `max_bytes`,
    /// dropping the largest idle buffers first. Useful after a burst
    /// of large commits when the store is expected to go quiet.
    pub fn trim_workspace(&self, max_bytes: usize) {
        self.workspace.trim(max_bytes);
    }

    fn commit_updates(
        &self,
        updates: &[EdgeUpdate],
        full: bool,
    ) -> Result<Arc<Snapshot>, BccError> {
        let _serial = self.commit_lock.lock().unwrap();
        self.commit_locked(updates, full)
    }

    /// The commit body; caller holds `commit_lock`.
    fn commit_locked(&self, updates: &[EdgeUpdate], full: bool) -> Result<Arc<Snapshot>, BccError> {
        if updates.is_empty() {
            return Ok(self.load());
        }
        let t0 = Instant::now();
        let prev = self.load();
        let old_n = prev.graph.n();

        // Fold the batch to its net per-edge effect (last op wins).
        // Opposing insert/remove pairs of the same edge cancel *before*
        // anything downstream sees them, so a churny stream that undoes
        // itself within one transaction costs no component rebuild —
        // and the vertex set grows only from edges whose net effect is
        // an insert: a cancelled insert naming a brand-new vertex
        // leaves no phantom vertex behind.
        let mut ops: BTreeMap<u64, bool> = BTreeMap::new();
        for &u in updates {
            match u {
                EdgeUpdate::Insert(a, b) => {
                    if a != b {
                        ops.insert(Edge::new(a, b).key(), true);
                    }
                }
                EdgeUpdate::Remove(a, b) => {
                    if a != b {
                        ops.insert(Edge::new(a, b).key(), false);
                    }
                }
            }
        }
        let mut new_n = old_n;
        for (&key, &is_insert) in &ops {
            if is_insert {
                new_n = new_n.max(((key >> 32) as u32).max(key as u32) + 1);
            }
        }

        // Classify against the previous edge set, marking the touched
        // components: a real removal touches its edge's component, a
        // real insertion touches both endpoints' (merging them if they
        // differ). Duplicate inserts and absent removes touch nothing.
        let mut touched = vec![false; prev.index.comps.len()];
        let mut edges: Vec<Edge> = Vec::with_capacity(prev.graph.m() + ops.len());
        let mut removes = 0usize;
        for &e in prev.graph.edges() {
            match ops.remove(&e.key()) {
                Some(false) => {
                    removes += 1;
                    touched[prev.index.slot[e.u as usize] as usize] = true;
                }
                _ => edges.push(e), // kept (possibly a duplicate insert)
            }
        }
        let mut inserts = 0usize;
        for (&key, &is_insert) in &ops {
            if !is_insert {
                continue; // removing an absent edge: no-op
            }
            let e = Edge::new((key >> 32) as u32, key as u32);
            inserts += 1;
            for v in [e.u, e.v] {
                if v < old_n {
                    touched[prev.index.slot[v as usize] as usize] = true;
                }
            }
            edges.push(e);
        }
        let graph = GraphBuilder::new(new_n).edges(edges).build().unwrap();

        if full {
            let index = BiconnectivityIndex::from_graph_with(
                &self.pool,
                &graph,
                self.algorithm,
                &self.workspace,
            )?;
            let stats = CommitStats {
                batch: updates.len(),
                inserts,
                removes,
                components_rebuilt: index.num_components(),
                components_reused: 0,
                vertices_rebuilt: new_n,
                edges_rebuilt: graph.m(),
                reused_fraction: 0.0,
                full_rebuild: true,
                seconds: 0.0,
            };
            return Ok(self.publish(&prev, graph, index, stats.timed(t0.elapsed())));
        }

        // The rebuild region: every vertex of a touched component plus
        // every newly created vertex.
        let mut region_verts: Vec<u32> = Vec::new();
        let mut region_local = vec![NIL; new_n as usize];
        for v in 0..old_n {
            if touched[prev.index.slot[v as usize] as usize] {
                region_local[v as usize] = region_verts.len() as u32;
                region_verts.push(v);
            }
        }
        for v in old_n..new_n {
            region_local[v as usize] = region_verts.len() as u32;
            region_verts.push(v);
        }

        if region_verts.is_empty() {
            // Every update folded to a no-op: bump the epoch, reuse the
            // whole index.
            let stats = CommitStats {
                batch: updates.len(),
                inserts,
                removes,
                components_rebuilt: 0,
                components_reused: prev.index.num_components(),
                vertices_rebuilt: 0,
                edges_rebuilt: 0,
                reused_fraction: 1.0,
                full_rebuild: false,
                seconds: 0.0,
            };
            let index = prev.index.clone();
            return Ok(self.publish(&prev, graph, index, stats.timed(t0.elapsed())));
        }

        // Extract the region as a relabeled subgraph. A kept edge lies
        // entirely inside or entirely outside the region (its endpoints
        // share a component); an inserted edge is always inside.
        let rn = region_verts.len() as u32;
        let mut region_edges: Vec<Edge> = Vec::new();
        for &e in graph.edges() {
            let lu = region_local[e.u as usize];
            if lu != NIL {
                debug_assert_ne!(region_local[e.v as usize], NIL);
                region_edges.push(Edge::new(lu, region_local[e.v as usize]));
            }
        }
        let edges_rebuilt = region_edges.len();

        // Re-derive the region's connectivity (this is where merges
        // and splits resolve) and split it into connected parts.
        let ws = &self.workspace;
        let cc = bcc_connectivity::sv::connected_components_with_ws(
            &self.pool,
            rn,
            &region_edges,
            bcc_connectivity::SvVariant::FastSv,
            ws,
        );
        let mut labels = cc.label;
        ws.give(cc.tree_edges);
        let k = bcc_connectivity::sv::normalize_labels_ws(&self.pool, &mut labels, ws);
        let region_graph = GraphBuilder::new(rn).edges(region_edges).build().unwrap();
        let split = region_graph.split_by_labels(&labels, k);
        ws.give(labels);

        // Stitch: untouched components ride over by `Arc`; each region
        // part takes a freed slot (or a fresh one) and is rebuilt
        // through the per-component pipeline. Freed slots beyond the
        // part count (merges) stay as unreferenced `None`s.
        let mut comps = prev.index.comps.clone();
        let mut slot = prev.index.slot.clone();
        let mut local = prev.index.local.clone();
        slot.resize(new_n as usize, 0);
        local.resize(new_n as usize, 0);
        let freed: Vec<usize> = (0..touched.len()).filter(|&s| touched[s]).collect();
        let reused = prev.index.num_components() - freed.len() as u32;
        for &s in &freed {
            comps[s] = None;
        }
        let mut free_slots = freed.into_iter();
        let config = BccConfig::new(self.algorithm).workspace(Arc::clone(ws));
        let mut rebuilt = 0u32;
        for part in &split.parts {
            let s = free_slots.next().unwrap_or_else(|| {
                comps.push(None);
                comps.len() - 1
            });
            let verts_global: Vec<u32> = part
                .verts
                .iter()
                .map(|&rl| region_verts[rl as usize])
                .collect();
            for (l, &gv) in verts_global.iter().enumerate() {
                slot[gv as usize] = s as u32;
                local[gv as usize] = l as u32;
            }
            comps[s] =
                BiconnectivityIndex::build_component(&self.pool, part, &verts_global, &config)?;
            rebuilt += 1;
        }
        let index = BiconnectivityIndex::assemble(new_n, slot, local, comps);
        let stats = CommitStats {
            batch: updates.len(),
            inserts,
            removes,
            components_rebuilt: rebuilt,
            components_reused: reused,
            vertices_rebuilt: rn,
            edges_rebuilt,
            reused_fraction: 1.0 - rn as f64 / new_n as f64,
            full_rebuild: false,
            seconds: 0.0,
        };
        Ok(self.publish(&prev, graph, index, stats.timed(t0.elapsed())))
    }

    /// Installs the next epoch into the publication ring — one slot
    /// store plus two atomic releases, independent of graph size.
    fn publish(
        &self,
        prev: &Snapshot,
        graph: Graph,
        index: BiconnectivityIndex,
        stats: CommitStats,
    ) -> Arc<Snapshot> {
        let next = Arc::new(Snapshot {
            epoch: prev.epoch + 1,
            graph,
            index,
            stats,
            created: Instant::now(),
        });
        self.current.publish(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Failure;
    use bcc_graph::gen;

    #[test]
    fn fast_bcc_store_matches_default_across_commits() {
        // Same initial graph, same update stream, different rebuild
        // algorithms — every published snapshot must agree.
        let g = gen::random_connected(120, 300, 17);
        let a = IndexStore::new(Pool::new(2), g.clone()).unwrap();
        let b = IndexStore::with_algorithm(Pool::new(2), g, Algorithm::FastBcc).unwrap();
        for (u, v) in [(0u32, 60u32), (5, 90), (121, 122), (10, 121)] {
            let mut ta = a.begin();
            ta.insert(u, v);
            ta.commit().unwrap();
            let mut tb = b.begin();
            tb.insert(u, v);
            tb.commit().unwrap();
            let sa = a.load();
            let sb = b.load();
            assert_eq!(sa.index.num_blocks(), sb.index.num_blocks());
            assert_eq!(sa.index.num_bridges(), sb.index.num_bridges());
            assert_eq!(
                sa.index.articulation_points(),
                sb.index.articulation_points()
            );
            for x in (0..sa.graph.n()).step_by(7) {
                for y in (0..sa.graph.n()).step_by(11) {
                    assert_eq!(sa.index.same_block(x, y), sb.index.same_block(x, y));
                }
            }
        }
    }

    #[test]
    fn epochs_advance_and_old_snapshots_survive() {
        let store = IndexStore::new(Pool::new(2), gen::cycle(6)).unwrap();
        let before = store.load();
        assert_eq!(before.epoch, 0);
        assert!(before.stats.full_rebuild);
        assert!(before.index.articulation_points().is_empty());

        // Cut the cycle open: edge (0,1) gone, the rest becomes a path.
        let mut txn = store.begin();
        txn.remove(0, 1);
        assert_eq!(txn.len(), 1);
        let after = txn.commit().unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.index.articulation_points(), &[2, 3, 4, 5]);
        assert!(after.index.is_bridge(1, 2));
        assert_eq!(after.stats.removes, 1);
        assert!(!after.stats.full_rebuild);

        // The pre-update snapshot still answers from its own epoch. On
        // the new path 1-2-3-4-5-0, vertex 1 is a leaf (harmless) but
        // vertex 5 now separates 0 from 3.
        assert!(before.index.same_block(0, 3));
        assert!(before.index.survives_failure(0, 3, Failure::Vertex(5)));
        assert!(after.index.survives_failure(0, 3, Failure::Vertex(1)));
        assert!(!after.index.survives_failure(0, 3, Failure::Vertex(5)));
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let store = IndexStore::new(Pool::new(1), gen::cycle(4)).unwrap();
        let a = store.begin().commit().unwrap();
        assert_eq!(a.epoch, 0);
        assert!(Arc::ptr_eq(&a, &store.load()));
    }

    #[test]
    fn inserts_grow_the_vertex_set_and_heal_cuts() {
        let store = IndexStore::new(Pool::new(2), gen::path(4)).unwrap();
        // Close the path into a cycle, and hang a brand-new vertex 4.
        let mut txn = store.begin();
        txn.insert(3, 0)
            .insert(0, 4)
            .insert(0, 0) // self loop: ignored
            .insert(0, 1); // duplicate: ignored
        let snap = txn.commit().unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.graph.n(), 5);
        assert_eq!(snap.graph.m(), 5); // 4 path/cycle edges + pendant
        assert_eq!(snap.index.articulation_points(), &[0]);
        assert!(snap.index.same_block(1, 3)); // now on a cycle
        assert!(snap.index.survives_failure(1, 3, Failure::Vertex(2)));
        assert_eq!(snap.stats.batch, 4);
        assert_eq!(snap.stats.inserts, 2); // net of the loop + duplicate
        assert_eq!(snap.stats.components_rebuilt, 1);
    }

    #[test]
    fn cancelled_opposing_updates_fold_to_a_no_op() {
        let store = IndexStore::new(Pool::new(1), gen::cycle(5)).unwrap();
        let before = store.load();

        // Insert edges naming brand-new vertices, then cancel every
        // one of them inside the same transaction; sprinkle in the
        // other no-op shapes (absent remove, duplicate insert).
        let mut txn = store.begin();
        txn.insert(0, 9)
            .insert(9, 42)
            .remove(0, 9)
            .remove(9, 42)
            .remove(1, 77) // remove of an absent edge
            .insert(2, 3); // duplicate of an existing edge
        let snap = txn.commit().unwrap();

        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.graph.n(), 5, "cancelled inserts must not grow n");
        assert_eq!(snap.graph.m(), 5);
        assert_eq!(snap.stats.inserts, 0);
        assert_eq!(snap.stats.removes, 0);
        assert_eq!(snap.stats.components_rebuilt, 0, "no-op batch rebuilt");
        assert_eq!(snap.stats.reused_fraction, 1.0);
        // The single component rides over by pointer, untouched.
        assert!(Arc::ptr_eq(
            before.index.component_handle(0).unwrap(),
            snap.index.component_handle(0).unwrap()
        ));

        // Remove-then-reinsert of a present edge also cancels.
        let mut txn = store.begin();
        txn.remove(0, 1).insert(0, 1);
        let snap2 = txn.commit().unwrap();
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.stats.components_rebuilt, 0);
        assert_eq!(snap2.graph.m(), 5);

        // Last op still wins when the pair does NOT cancel: insert
        // then remove of a *present* edge is a real removal.
        let mut txn = store.begin();
        txn.insert(0, 1).remove(0, 1);
        let snap3 = txn.commit().unwrap();
        assert_eq!(snap3.stats.removes, 1);
        assert_eq!(snap3.graph.m(), 4);
        assert!(snap3.index.is_bridge(1, 2));
    }

    #[test]
    fn epoch_accessors_and_lag() {
        let store = IndexStore::new(Pool::new(1), gen::cycle(4)).unwrap();
        let old = store.load();
        assert_eq!(old.epoch(), 0);
        assert_eq!(store.latest_epoch(), 0);
        assert_eq!(store.lag_of(&old), 0);
        let t0 = old.created_at();

        std::thread::sleep(Duration::from_millis(2));
        let mut txn = store.begin();
        txn.remove(0, 1);
        let new = txn.commit().unwrap();

        assert_eq!(new.epoch(), 1);
        assert_eq!(store.latest_epoch(), 1);
        assert_eq!(store.lag_of(&old), 1, "held snapshot is one commit behind");
        assert_eq!(store.lag_of(&new), 0);
        assert!(new.created_at() > t0);
        assert!(old.age() >= new.age());
    }

    #[test]
    fn removal_can_disconnect() {
        let store = IndexStore::new(Pool::new(2), gen::cycle_chain(2, 4, 0)).unwrap();
        let mut txn = store.begin();
        txn.remove(3, 4); // the bridge
        let snap = txn.commit().unwrap();
        assert!(!snap.index.connected(0, 5));
        assert!(!snap.index.survives_failure(0, 5, Failure::Vertex(2)));
        assert_eq!(snap.stats.components_rebuilt, 2); // the split halves
                                                      // Removing an absent edge is a no-op but still bumps the epoch.
        let mut txn = store.begin();
        txn.remove(0, 5);
        let snap2 = txn.commit().unwrap();
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.graph.m(), snap.graph.m());
        assert_eq!(snap2.stats.components_rebuilt, 0);
        assert_eq!(snap2.stats.reused_fraction, 1.0);
    }

    #[test]
    fn untouched_components_are_reused_by_pointer() {
        // Three disjoint 5-cycles; edit only the middle one.
        let g = GraphBuilder::new(15)
            .edges((0..3).flat_map(|c| (0..5).map(move |i| (c * 5 + i, c * 5 + (i + 1) % 5))))
            .build()
            .unwrap();
        let store = IndexStore::new(Pool::new(2), g).unwrap();
        let before = store.load();
        assert_eq!(before.index.num_components(), 3);

        let mut txn = store.begin();
        txn.remove(5, 6);
        let after = txn.commit().unwrap();
        assert_eq!(after.stats.components_rebuilt, 1);
        assert_eq!(after.stats.components_reused, 2);
        assert_eq!(after.stats.vertices_rebuilt, 5);
        assert!((after.stats.reused_fraction - 2.0 / 3.0).abs() < 1e-9);

        // Untouched components: the *same* Arc, not an equal rebuild.
        for v in [0, 4, 10, 14] {
            assert!(Arc::ptr_eq(
                before.index.component_handle(v).unwrap(),
                after.index.component_handle(v).unwrap()
            ));
        }
        // The touched one was rebuilt.
        assert!(!Arc::ptr_eq(
            before.index.component_handle(5).unwrap(),
            after.index.component_handle(7).unwrap()
        ));
        assert!(after.index.is_bridge(6, 7));

        // A cross-component insert merges exactly the two endpoints'
        // components and leaves the third alone.
        let mut txn = store.begin();
        txn.insert(0, 10);
        let merged = txn.commit().unwrap();
        assert_eq!(merged.stats.components_rebuilt, 1);
        assert_eq!(merged.index.num_components(), 2); // merged pair + middle
        assert!(merged.index.connected(0, 10));
        assert!(Arc::ptr_eq(
            after.index.component_handle(7).unwrap(),
            merged.index.component_handle(7).unwrap()
        ));
    }

    #[test]
    fn incremental_matches_full_rebuild() {
        let store = IndexStore::new(Pool::new(2), gen::cycle_chain(3, 4, 1)).unwrap();
        let mut txn = store.begin();
        txn.extend([
            EdgeUpdate::Remove(3, 4),
            EdgeUpdate::Insert(0, 9),
            EdgeUpdate::Insert(13, 14), // new vertex
        ]);
        let inc = txn.commit().unwrap();

        let pool = Pool::new(2);
        let full = BiconnectivityIndex::from_graph(&pool, &inc.graph).unwrap();
        assert_eq!(inc.index.articulation_points(), full.articulation_points());
        assert_eq!(inc.index.num_blocks(), full.num_blocks());
        assert_eq!(inc.index.num_bridges(), full.num_bridges());
        assert_eq!(inc.index.num_components(), full.num_components());
        let n = inc.graph.n();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(inc.index.connected(u, v), full.connected(u, v));
                assert_eq!(inc.index.same_block(u, v), full.same_block(u, v));
            }
        }
    }

    #[test]
    fn readers_keep_serving_across_concurrent_commits() {
        let store = IndexStore::new(Pool::new(2), gen::cycle(8)).unwrap();
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut answered = 0u64;
                for _ in 0..200 {
                    let snap = store.load();
                    // Within one snapshot, answers are consistent no
                    // matter what writers publish meanwhile.
                    if snap.index.connected(0, 4) {
                        assert!(snap.index.same_block(0, 4));
                        assert!(!snap.index.survives_failure(0, 4, Failure::Vertex(0)));
                    }
                    answered += 1;
                }
                answered
            });
            let writer = s.spawn(|| {
                for round in 0..20 {
                    let mut txn = store.begin();
                    if round % 2 == 0 {
                        txn.remove(0, 1).remove(4, 5);
                    } else {
                        txn.insert(0, 1).insert(4, 5);
                    }
                    txn.commit().unwrap();
                }
            });
            assert_eq!(reader.join().unwrap(), 200);
            writer.join().unwrap();
        });
        assert_eq!(store.load().epoch, 20);
    }
}

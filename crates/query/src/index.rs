//! The immutable biconnectivity index and its point queries.
//!
//! # Layout
//!
//! Biconnectivity is local to a connected component: no block, bridge,
//! or articulation relationship ever crosses a component boundary. The
//! index exploits that by being a *composite* — one immutable
//! [`ComponentIndex`] per connected component, plus two per-vertex
//! routing arrays (`slot`, the component handle; `local`, the vertex's
//! compact id inside it). Cross-component queries short out on the
//! routing layer; everything else is answered by exactly one component
//! index. The payoff is incremental rebuilds: `IndexStore` commits swap
//! only the touched components' indices and share the rest by `Arc`
//! (see [`crate::IndexStore`]).
//!
//! Inside a component, the layout is the classic one. Every vertex maps
//! to one node of the component's block-cut tree
//! ([`bcc_core::BlockCutTree`]): articulation vertices map to their cut
//! node, every other vertex to its unique *home block* (the block all
//! of its edges belong to). Over the tree nodes the index stores a
//! rooting (parent, depth, preorder, subtree size) plus a
//! binary-lifting ancestor table, so tree distances and lowest common
//! ancestors — the primitives behind every query below — cost
//! O(log n). A sorted table of bridge-edge keys answers "is this edge a
//! bridge" by binary search.
//!
//! The crucial structural facts (classic block-cut-tree theory):
//!
//! * two vertices lie in a common block iff the tree distance between
//!   their nodes equals the number of endpoints that are cut vertices
//!   (0, 1 or 2);
//! * the articulation points whose failure separates `u` from `v` are
//!   exactly the cut nodes strictly inside the tree path between their
//!   nodes;
//! * a bridge separates `u` from `v` iff its (single-edge) block node
//!   lies on that path — or is the home of `u` or `v`, which makes
//!   that endpoint a leaf hanging off the bridge itself.

use bcc_euler::LcaIndex;
use bcc_smp::NIL;
use std::sync::Arc;

/// A single failure to test connectivity against.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// A vertex (router) goes down, taking all its edges with it.
    Vertex(u32),
    /// An edge (link) goes down; endpoints are unordered.
    Edge(u32, u32),
}

/// The biconnectivity index of **one connected component**: the
/// block-cut tree of the component's induced subgraph, rooted, with a
/// lifting table and a bridge table. All vertex arrays are in the
/// component's compact local ids; [`vertices`](Self::vertices) maps
/// them back to graph ids. Immutable — incremental commits share
/// untouched components across epochs by cloning the `Arc` that wraps
/// this.
pub struct ComponentIndex {
    /// Local → graph vertex id, strictly ascending.
    pub(crate) verts: Vec<u32>,
    /// Number of blocks (tree nodes `0..num_blocks` are blocks).
    pub(crate) num_blocks: u32,
    /// Articulation vertices in local ids, ascending.
    pub(crate) articulation: Vec<u32>,
    /// Per local vertex: index into `articulation`, or `NIL`.
    pub(crate) cut_index: Vec<u32>,
    /// Per local vertex: its block-cut-tree node (never `NIL` — a
    /// component of two or more vertices has no isolated vertex, and
    /// single-vertex components get no `ComponentIndex` at all).
    pub(crate) node: Vec<u32>,
    /// Binary-lifting table over tree nodes (`up[0]` = parent).
    pub(crate) lca: LcaIndex,
    /// DFS preorder number of each tree node, for O(1) ancestor tests.
    pub(crate) pre: Vec<u32>,
    /// Subtree size of each tree node.
    pub(crate) size: Vec<u32>,
    /// Normalized keys of bridge edges in **graph** ids, sorted
    /// ascending (graph keys so lookups skip a per-endpoint
    /// translation).
    pub(crate) bridge_keys: Vec<u64>,
    /// Block node of each bridge, parallel to `bridge_keys`.
    pub(crate) bridge_block: Vec<u32>,
}

impl ComponentIndex {
    /// Number of vertices in this component.
    #[inline]
    pub fn n(&self) -> u32 {
        self.verts.len() as u32
    }

    /// The component's vertices in graph ids, ascending (`verts[l]` is
    /// the graph vertex with local id `l`).
    #[inline]
    pub fn vertices(&self) -> &[u32] {
        &self.verts
    }

    /// Number of blocks in this component.
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    /// Number of bridge edges in this component.
    #[inline]
    pub fn num_bridges(&self) -> usize {
        self.bridge_keys.len()
    }

    /// The graph vertex a tree node stands for, if it is a cut node.
    #[inline]
    fn cut_vertex_of_node(&self, x: u32) -> Option<u32> {
        x.checked_sub(self.num_blocks)
            .map(|i| self.verts[self.articulation[i as usize] as usize])
    }

    /// O(1) ancestor test over tree nodes via preorder intervals.
    #[inline]
    fn is_ancestor(&self, a: u32, d: u32) -> bool {
        let pa = self.pre[a as usize];
        let pd = self.pre[d as usize];
        pd >= pa && pd - pa < self.size[a as usize]
    }

    /// True if tree node `c` lies on the path from `a` to `b`. One LCA
    /// = O(log n).
    fn on_path(&self, c: u32, a: u32, b: u32) -> bool {
        let l = self.lca.lca(a, b);
        (self.is_ancestor(c, a) || self.is_ancestor(c, b)) && self.is_ancestor(l, c)
    }
}

/// A build-once, query-millions biconnectivity index. Immutable and
/// `Sync`: share it behind an `Arc` and query from any number of
/// threads (see [`crate::IndexStore`] for updates). `Clone` is cheap
/// relative to a rebuild — the per-component structures are shared by
/// `Arc`, only the per-vertex routing arrays are copied.
///
/// Vertex arguments must be `< n` for the indexed graph; like the
/// rest of the workspace, out-of-range ids panic with a bounds error
/// rather than returning a wrong answer.
#[derive(Clone)]
pub struct BiconnectivityIndex {
    /// Number of graph vertices.
    pub(crate) n: u32,
    /// Per vertex: index into `comps` (equal slots ⇔ same connected
    /// component).
    pub(crate) slot: Vec<u32>,
    /// Per vertex: its local id within `comps[slot[v]]`.
    pub(crate) local: Vec<u32>,
    /// Per slot: the component's index, or `None` for a single
    /// (isolated) vertex. Slots freed by component merges stay as
    /// unreferenced `None`s until the next full rebuild.
    pub(crate) comps: Vec<Option<Arc<ComponentIndex>>>,
    /// All articulation vertices in graph ids, ascending.
    pub(crate) articulation: Vec<u32>,
    /// Total number of blocks across components.
    pub(crate) num_blocks: u32,
    /// Total number of bridges across components.
    pub(crate) num_bridges: usize,
    /// Number of connected components (isolated vertices included).
    pub(crate) num_components: u32,
}

impl BiconnectivityIndex {
    /// Number of graph vertices the index covers.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of biconnected components (blocks).
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    /// Number of connected components, isolated vertices included.
    #[inline]
    pub fn num_components(&self) -> u32 {
        self.num_components
    }

    /// The articulation points, ascending.
    #[inline]
    pub fn articulation_points(&self) -> &[u32] {
        &self.articulation
    }

    /// Number of bridge edges.
    #[inline]
    pub fn num_bridges(&self) -> usize {
        self.num_bridges
    }

    /// The shared per-component index `v` belongs to, or `None` if `v`
    /// is isolated. Incremental commits keep untouched components'
    /// handles pointer-identical across epochs — `Arc::ptr_eq` on two
    /// snapshots tells whether a commit rebuilt `v`'s component.
    #[inline]
    pub fn component_handle(&self, v: u32) -> Option<&Arc<ComponentIndex>> {
        self.comps[self.slot[v as usize] as usize].as_ref()
    }

    /// The component index serving `v`, if `v` is not isolated.
    #[inline]
    fn comp(&self, v: u32) -> Option<&ComponentIndex> {
        self.comps[self.slot[v as usize] as usize].as_deref()
    }

    /// `v`'s block-cut-tree node within its component `c`.
    #[inline]
    fn node_of(&self, c: &ComponentIndex, v: u32) -> u32 {
        c.node[self.local[v as usize] as usize]
    }

    /// True if `v` is an articulation (cut) vertex. O(1).
    #[inline]
    pub fn is_articulation(&self, v: u32) -> bool {
        match self.comp(v) {
            Some(c) => c.cut_index[self.local[v as usize] as usize] != NIL,
            None => false,
        }
    }

    /// True if `u` and `v` are in the same connected component. O(1).
    #[inline]
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.slot[u as usize] == self.slot[v as usize]
    }

    /// True if the edge `{u, v}` exists and is a bridge (its removal
    /// disconnects its endpoints). O(log #bridges).
    pub fn is_bridge(&self, u: u32, v: u32) -> bool {
        self.bridge_lookup(u, v).is_some()
    }

    /// True if some biconnected component contains both `u` and `v`
    /// (i.e. they survive the failure of any *third* vertex). By
    /// convention `same_block(v, v)` is true. O(log n).
    pub fn same_block(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        if !self.connected(u, v) {
            return false;
        }
        let Some(c) = self.comp(u) else {
            return false; // isolated vertices share no block
        };
        let (a, b) = (self.node_of(c, u), self.node_of(c, v));
        // Tree distance 0/1/2 matches exactly the cut-endpoint count:
        // block+block share iff the nodes coincide (dist 0), cut+block
        // iff adjacent (dist 1), cut+cut iff both adjacent to a common
        // block (dist 2). Any larger distance means separate blocks.
        let cuts = u32::from(self.is_articulation(u)) + u32::from(self.is_articulation(v));
        c.lca.path_length(a, b) == cuts
    }

    /// The articulation points whose individual failure separates `u`
    /// from `v` — the cut vertices strictly inside the block-cut-tree
    /// path between them (`u` and `v` themselves are never reported).
    /// Empty when `u == v`, when they share a block, or when they are
    /// already disconnected. Sorted ascending. O(log n + answer · path
    /// walk), i.e. output-sensitive.
    pub fn vertex_cut_between(&self, u: u32, v: u32) -> Vec<u32> {
        let mut cuts = Vec::new();
        if u == v || !self.connected(u, v) {
            return cuts;
        }
        let Some(c) = self.comp(u) else {
            return cuts;
        };
        let (a, b) = (self.node_of(c, u), self.node_of(c, v));
        let l = c.lca.lca(a, b);
        let mut collect = |x: u32| {
            if let Some(cut) = c.cut_vertex_of_node(x) {
                if cut != u && cut != v {
                    cuts.push(cut);
                }
            }
        };
        let mut walk = a;
        while walk != l {
            collect(walk);
            walk = c.lca.ancestor(walk, 1);
        }
        let mut walk = b;
        while walk != l {
            collect(walk);
            walk = c.lca.ancestor(walk, 1);
        }
        collect(l);
        cuts.sort_unstable();
        cuts
    }

    /// Are `u` and `v` still connected after failure `f`? For vertex
    /// failures, `f == u` or `f == v` answers false (the endpoint is
    /// gone); for edge failures the endpoints stay. Removing an edge
    /// that does not exist is a no-op. Pairs that were already
    /// disconnected answer false; `u == v` answers true unless the
    /// failed vertex is `u` itself. O(log n).
    pub fn survives_failure(&self, u: u32, v: u32, f: Failure) -> bool {
        if u == v {
            return match f {
                Failure::Vertex(x) => x != u,
                Failure::Edge(..) => true,
            };
        }
        if !self.connected(u, v) {
            return false;
        }
        match f {
            Failure::Vertex(x) => {
                if x == u || x == v {
                    return false;
                }
                if !self.is_articulation(x) || !self.connected(x, u) {
                    return true; // can't separate anything relevant
                }
                let c = self.comp(u).expect("articulation ⇒ component has edges");
                let cut = self.node_of(c, x); // x's cut node
                let (a, b) = (self.node_of(c, u), self.node_of(c, v));
                // cut != a and cut != b here: a cut node is the image
                // of its articulation vertex only, and x is neither u
                // nor v — so "on path" is exactly "strictly between".
                !c.on_path(cut, a, b)
            }
            Failure::Edge(x, y) => {
                let Some((bc, bridge)) = self.bridge_lookup(x, y) else {
                    return true; // non-bridge (or absent) edges never cut
                };
                if !self.connected(x, u) {
                    return true;
                }
                let (a, b) = (self.node_of(bc, u), self.node_of(bc, v));
                if a == bridge || b == bridge {
                    // The endpoint's home *is* the bridge block: it is
                    // a leaf whose only edge is the failed one.
                    return false;
                }
                !bc.on_path(bridge, a, b)
            }
        }
    }

    /// The component and bridge-table node for edge `{u, v}`, if it is
    /// a bridge.
    #[inline]
    fn bridge_lookup(&self, u: u32, v: u32) -> Option<(&ComponentIndex, u32)> {
        if !self.connected(u, v) {
            return None; // an edge never crosses components
        }
        let c = self.comp(u)?;
        let key = bcc_graph::Edge::new(u, v).key();
        c.bridge_keys
            .binary_search(&key)
            .ok()
            .map(|i| (c, c.bridge_block[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;
    use bcc_smp::Pool;

    fn idx(g: &bcc_graph::Graph) -> BiconnectivityIndex {
        BiconnectivityIndex::from_graph(&Pool::new(2), g).unwrap()
    }

    #[test]
    fn two_cliques() {
        // Cliques {0..3} and {3..6} sharing the cut vertex 3 (n = 7).
        let g = gen::two_cliques_sharing_vertex(4);
        let i = idx(&g);
        assert_eq!(i.num_blocks(), 2);
        assert_eq!(i.num_components(), 1);
        assert_eq!(i.articulation_points(), &[3]);
        assert_eq!(i.num_bridges(), 0);
        assert!(i.is_articulation(3) && !i.is_articulation(0));
        assert!(i.same_block(0, 2) && i.same_block(0, 3) && i.same_block(3, 5));
        assert!(!i.same_block(0, 4));
        assert!(!i.is_bridge(0, 1)); // clique edge, not a bridge
        assert_eq!(i.vertex_cut_between(0, 6), vec![3]);
        assert_eq!(i.vertex_cut_between(0, 3), Vec::<u32>::new());
        assert_eq!(i.vertex_cut_between(0, 1), Vec::<u32>::new());
        assert!(!i.survives_failure(0, 6, Failure::Vertex(3)));
        assert!(i.survives_failure(0, 6, Failure::Vertex(1)));
        assert!(i.survives_failure(0, 6, Failure::Edge(3, 5)));
        assert!(i.survives_failure(0, 2, Failure::Vertex(3)));
    }

    #[test]
    fn barbell_with_bridges() {
        // Cliques {0,1,2} and {4,5,6} joined by the path 2-3-4.
        let g = gen::barbell(3, 2);
        let i = idx(&g);
        assert_eq!(i.articulation_points(), &[2, 3, 4]);
        assert_eq!(i.num_bridges(), 2);
        assert!(i.is_bridge(2, 3) && i.is_bridge(4, 3));
        assert!(!i.is_bridge(0, 1));
        assert!(!i.is_bridge(0, 6)); // not even an edge
        assert!(i.same_block(2, 3) && i.same_block(3, 4)); // bridge blocks
        assert!(!i.same_block(2, 4));
        assert_eq!(i.vertex_cut_between(0, 6), vec![2, 3, 4]);
        assert_eq!(i.vertex_cut_between(1, 3), vec![2]);
        assert!(!i.survives_failure(0, 6, Failure::Edge(2, 3)));
        assert!(!i.survives_failure(0, 6, Failure::Vertex(3)));
        assert!(i.survives_failure(0, 2, Failure::Edge(2, 3)));
        assert!(i.survives_failure(0, 1, Failure::Vertex(3)));
        // Order of bridge endpoints must not matter.
        assert!(!i.survives_failure(6, 0, Failure::Edge(3, 2)));
    }

    #[test]
    fn leaf_endpoint_of_a_bridge() {
        // Path 0-1-2-3-4: every edge a bridge, 0 and 4 are leaves.
        let g = gen::path(5);
        let i = idx(&g);
        assert_eq!(i.num_bridges(), 4);
        assert!(!i.survives_failure(0, 4, Failure::Edge(0, 1)));
        assert!(!i.survives_failure(0, 1, Failure::Edge(0, 1)));
        assert!(i.survives_failure(1, 4, Failure::Edge(0, 1)));
        assert_eq!(i.vertex_cut_between(0, 4), vec![1, 2, 3]);
        assert!(i.same_block(0, 1) && !i.same_block(0, 2));
    }

    #[test]
    fn biconnected_graph_has_no_cuts() {
        let i = idx(&gen::wheel(10));
        assert_eq!(i.num_blocks(), 1);
        assert!(i.articulation_points().is_empty());
        for u in 0..10 {
            for v in 0..10 {
                assert!(i.same_block(u, v));
                assert!(i.vertex_cut_between(u, v).is_empty());
            }
        }
        assert!(i.survives_failure(1, 5, Failure::Vertex(0)));
        assert!(i.survives_failure(1, 5, Failure::Edge(0, 1)));
    }

    #[test]
    fn disconnected_and_isolated_vertices() {
        // Triangle {0,1,2}, edge {3,4}, isolated 5.
        let g = bcc_graph::GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4)])
            .build()
            .unwrap();
        let i = idx(&g);
        assert_eq!(i.num_components(), 3);
        assert!(i.connected(0, 2) && !i.connected(0, 3) && !i.connected(5, 0));
        assert!(!i.same_block(0, 3));
        assert!(i.same_block(5, 5)); // convention: reflexive
        assert!(!i.same_block(5, 0));
        assert!(i.vertex_cut_between(0, 4).is_empty()); // disconnected
        assert!(!i.survives_failure(0, 3, Failure::Vertex(1))); // never connected
        assert!(i.survives_failure(5, 5, Failure::Edge(0, 1)));
        assert!(!i.survives_failure(5, 5, Failure::Vertex(5)));
        assert!(i.is_bridge(3, 4));
        // The composite layout: isolated 5 has no component handle,
        // the triangle and the edge have distinct ones.
        assert!(i.component_handle(5).is_none());
        let tri = i.component_handle(0).unwrap();
        assert_eq!(tri.vertices(), &[0, 1, 2]);
        assert_eq!(tri.num_blocks(), 1);
        let pair = i.component_handle(4).unwrap();
        assert_eq!(pair.vertices(), &[3, 4]);
        assert_eq!(pair.num_bridges(), 1);
        assert!(!Arc::ptr_eq(tri, pair));
    }

    #[test]
    fn self_and_endpoint_failures() {
        let g = gen::cycle(6);
        let i = idx(&g);
        assert!(!i.survives_failure(2, 2, Failure::Vertex(2)));
        assert!(i.survives_failure(2, 2, Failure::Vertex(3)));
        assert!(!i.survives_failure(2, 5, Failure::Vertex(2)));
        assert!(!i.survives_failure(2, 5, Failure::Vertex(5)));
        assert!(i.survives_failure(2, 5, Failure::Edge(2, 3))); // cycle survives
                                                                // Removing a non-existent edge is a no-op.
        assert!(i.survives_failure(2, 5, Failure::Edge(0, 3)));
    }
}

//! Property tests for the fused middle of the pipeline (satellite of
//! the workspace-arena PR): the single-sweep Low-high and the
//! count→scan→emit Label-edge must agree with their literal-paper
//! reference implementations on every input, including edge lists with
//! self-loops, duplicate edges, and nontree candidates that leave most
//! of the tree untouched (disconnected candidate clusters).
//!
//! Both pairs share the inputs exactly, so equivalence is well-defined
//! even on degenerate edges: whatever the reference computes, the fused
//! kernel must compute too. A final end-to-end property drives the
//! fused kernels through `run_any` on frequently *disconnected* random
//! graphs against the sequential oracle.

use bcc_connectivity::bfs::bfs_tree_seq;
use bcc_core::{
    build_aux_graph, build_aux_graph_fused, compute_low_high, compute_low_high_two_pass, Algorithm,
    BccConfig,
};
use bcc_euler::{dfs_euler_tour, tree_computations, TreeInfo};
use bcc_graph::{gen, Csr, Edge, Graph};
use bcc_smp::Pool;
use proptest::prelude::*;

/// Strategy: a connected base graph plus extra raw pairs (possibly
/// self-loops or duplicates of existing edges) appended as nontree
/// candidates.
fn graph_with_messy_extras() -> impl Strategy<Value = (Graph, Vec<Edge>)> {
    (8u32..60, 0usize..200, any::<u64>()).prop_flat_map(|(n, extra, seed)| {
        let m = ((n as usize - 1) + extra / 2).min(gen::max_edges(n));
        let g = gen::random_connected(n, m, seed);
        let pairs = proptest::collection::vec((0..n, 0..n), 0..48);
        (Just(g), pairs).prop_map(|(g, pairs)| {
            let extras = pairs.into_iter().map(|(u, v)| Edge::new(u, v)).collect();
            (g, extras)
        })
    })
}

/// Rooted-tree inputs the tail kernels consume: the extended edge list
/// (base edges + extras, all extras nontree), the tree flags, and the
/// tree computations of a deterministic BFS spanning tree of the base.
fn tail_inputs(pool: &Pool, g: &Graph, extras: &[Edge]) -> (Vec<Edge>, Vec<bool>, TreeInfo) {
    let csr = Csr::build(g);
    let bfs = bfs_tree_seq(&csr, 0);
    let mut edges = g.edges().to_vec();
    edges.extend_from_slice(extras);
    let mut is_tree = vec![false; edges.len()];
    for &e in &bfs.tree_edge_ids() {
        is_tree[e as usize] = true;
    }
    let tree_edges: Vec<Edge> = bfs
        .tree_edge_ids()
        .iter()
        .map(|&i| g.edges()[i as usize])
        .collect();
    let tour = dfs_euler_tour(pool, g.n(), tree_edges, &bfs.parent, 0);
    let info = tree_computations(pool, &tour, 0);
    (edges, is_tree, info)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fused_low_high_matches_two_pass_reference((g, extras) in graph_with_messy_extras()) {
        for p in [1usize, 3] {
            let pool = Pool::new(p);
            let (edges, is_tree, info) = tail_inputs(&pool, &g, &extras);
            let fused = compute_low_high(&pool, &edges, &is_tree, &info);
            let two_pass = compute_low_high_two_pass(&pool, &edges, &is_tree, &info);
            prop_assert_eq!(&fused.low, &two_pass.low, "low differs (p={})", p);
            prop_assert_eq!(&fused.high, &two_pass.high, "high differs (p={})", p);
        }
    }

    #[test]
    fn fused_label_edge_matches_three_region_reference((g, extras) in graph_with_messy_extras()) {
        for p in [1usize, 2, 4] {
            let pool = Pool::new(p);
            let (edges, is_tree, info) = tail_inputs(&pool, &g, &extras);
            let lh = compute_low_high(&pool, &edges, &is_tree, &info);
            let reference = build_aux_graph(&pool, g.n(), &edges, &is_tree, &info, &lh);
            let fused = build_aux_graph_fused(&pool, g.n(), &edges, &is_tree, &info, &lh);
            prop_assert_eq!(reference.num_vertices, fused.num_vertices, "p={}", p);
            prop_assert_eq!(&reference.nontree_index, &fused.nontree_index, "p={}", p);
            // Emission order differs; the sorted edge multiset must not.
            let key = |e: &Edge| (e.u.min(e.v), e.u.max(e.v));
            let mut a: Vec<_> = reference.edges.iter().map(key).collect();
            let mut b: Vec<_> = fused.edges.iter().map(key).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "edge multiset differs (p={})", p);
        }
    }

    #[test]
    fn fused_pipeline_matches_sequential_on_disconnected_graphs(
        n in 6u32..70,
        m in 0usize..180,
        seed in any::<u64>(),
    ) {
        // random_gnm is frequently disconnected at these densities, so
        // the fused kernels run once per component inside run_any.
        let g = gen::random_gnm(n, m.min(gen::max_edges(n)), seed);
        let pool = Pool::new(2);
        let base = BccConfig::new(Algorithm::Sequential)
            .run_any(&pool, &g)
            .unwrap()
            .result;
        for alg in [
            Algorithm::TvSmp,
            Algorithm::TvOpt,
            Algorithm::TvFilter,
            Algorithm::FastBcc,
        ] {
            let r = BccConfig::new(alg).run_any(&pool, &g).unwrap().result;
            prop_assert_eq!(&r.edge_comp, &base.edge_comp, "{}", alg.name());
            prop_assert_eq!(r.num_components, base.num_components);
        }
    }
}

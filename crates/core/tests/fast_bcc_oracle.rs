//! The FAST-BCC oracle: its labelings are pinned **bit-for-bit** to
//! both the Sequential (Hopcroft–Tarjan) baseline and the TV-filter
//! pipeline — not merely "same partition". All three canonicalize
//! labels by first edge occurrence, so identical `edge_comp` vectors
//! are the exact correctness statement, and any future divergence in
//! the skeleton tags, the certificate, or the placement rule fails
//! loudly here.
//!
//! Coverage: every generator family (structured and random), raw edge
//! streams with self-loops (sanitized by the lenient builder, as real
//! ingestion does) and duplicate edges (preserved by the strict
//! builder, so the pipelines see them), disconnected graphs and
//! single-vertex components through `run_any`, and an in-memory vs
//! mmap-backed `.bccsr` equivalence case.

use bcc_core::{Algorithm, BccConfig, BccResult};
use bcc_graph::{bccsr, gen, io, Edge, Graph, GraphBuilder};
use bcc_smp::Pool;
use proptest::prelude::*;

/// Sequential labeling via the per-component driver (the oracle).
fn oracle(g: &Graph) -> BccResult {
    BccConfig::new(Algorithm::Sequential)
        .run_any(&Pool::new(1), g)
        .unwrap()
        .result
}

/// Asserts FAST-BCC and TV-filter both reproduce the oracle labeling
/// bit-for-bit at 1 and 3 threads.
fn assert_pinned(g: &Graph, what: &str) {
    let base = oracle(g);
    for p in [1usize, 3] {
        let pool = Pool::new(p);
        for alg in [Algorithm::FastBcc, Algorithm::TvFilter] {
            let r = BccConfig::new(alg).run_any(&pool, g).unwrap().result;
            assert_eq!(
                r.edge_comp,
                base.edge_comp,
                "{} p={p} on {what}",
                alg.name()
            );
            assert_eq!(r.num_components, base.num_components, "{what}");
        }
    }
}

#[test]
fn structured_families_are_pinned() {
    let cases: Vec<(&str, Graph)> = vec![
        ("path", gen::path(40)),
        ("cycle", gen::cycle(41)),
        ("star", gen::star(30)),
        ("complete", gen::complete(12)),
        ("binary-tree", gen::binary_tree(63)),
        ("torus", gen::torus(5, 7)),
        ("wheel", gen::wheel(19)),
        ("ladder", gen::ladder(14)),
        ("hypercube", gen::hypercube(5)),
        ("barbell", gen::barbell(6, 4)),
        ("bipartite", gen::complete_bipartite(4, 7)),
        ("two-cliques", gen::two_cliques_sharing_vertex(5)),
        ("cycle-chain", gen::cycle_chain(6, 5, 3)),
        ("single-vertex", GraphBuilder::new(1).build().unwrap()),
        ("edgeless", GraphBuilder::new(5).build().unwrap()),
    ];
    for (what, g) in &cases {
        assert_pinned(g, what);
    }
}

#[test]
fn random_families_are_pinned() {
    for seed in 0..3u64 {
        assert_pinned(&gen::random_tree(90, seed), "random-tree");
        assert_pinned(&gen::random_connected(120, 360, seed), "random-connected");
        assert_pinned(&gen::random_gnm(100, 80, seed), "gnm-disconnected");
        assert_pinned(&gen::dense_percent(28, 0.5, seed), "dense");
        assert_pinned(&gen::rmat(7, 300, 0.57, 0.19, 0.19, seed), "rmat");
        assert_pinned(&gen::geometric(200, 7.0, 12, seed), "geometric");
    }
}

#[test]
fn mapped_bccsr_input_is_equivalent() {
    // The xl tier's input path: the same graph through the in-memory
    // edge list and through an mmap-backed `.bccsr` must label
    // identically (the mapped file stores edges in its own order, so
    // compare against the *mapped* oracle — bit-for-bit is defined per
    // edge list).
    let dir = std::env::temp_dir();
    let path = dir.join(format!("bcc-fastbcc-oracle-{}.bccsr", std::process::id()));
    let g = gen::geometric(300, 8.0, 30, 17);
    bccsr::write(&path, &g).unwrap();
    let mapped = io::load(&path).unwrap();
    assert!(mapped.is_mapped());
    assert_pinned(&mapped, "mapped-bccsr");
    // Same partition as the in-memory run, stated on shared edge keys:
    // two edges share a label in-memory iff they do mapped.
    let mem = BccConfig::new(Algorithm::FastBcc)
        .run_any(&Pool::new(2), &g)
        .unwrap()
        .result;
    let dsk = BccConfig::new(Algorithm::FastBcc)
        .run_any(&Pool::new(2), &mapped)
        .unwrap()
        .result;
    assert_eq!(mem.num_components, dsk.num_components);
    let label_by_key = |g: &Graph, r: &BccResult| {
        let mut v: Vec<(u64, u32)> = g
            .edges()
            .iter()
            .zip(&r.edge_comp)
            .map(|(e, &c)| (e.key(), c))
            .collect();
        v.sort_unstable();
        v
    };
    let a = label_by_key(&g, &mem);
    let b = label_by_key(&mapped, &dsk);
    // Keys align (same edge set); labels must induce the same blocks.
    let mut rename = std::collections::HashMap::new();
    for ((ka, ca), (kb, cb)) in a.iter().zip(&b) {
        assert_eq!(ka, kb);
        assert_eq!(*rename.entry(ca).or_insert(cb), cb, "partition differs");
    }
    let _ = std::fs::remove_file(path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Raw edge streams: self-loops (dropped by the lenient builder)
    // over an arbitrary pair soup — frequently disconnected, with
    // isolated vertices and single-vertex components.
    #[test]
    fn lenient_pair_soup_is_pinned(
        n in 2u32..50,
        pairs in proptest::collection::vec((0u32..50, 0u32..50), 0..120),
    ) {
        let n = n.max(pairs.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(1));
        let g = GraphBuilder::new(n)
            .lenient()
            .edges(pairs.into_iter().map(Edge::from))
            .build()
            .unwrap();
        assert_pinned(&g, "pair-soup");
    }

    // Duplicate edges reach the pipelines verbatim: a connected base
    // with copies of existing edges appended (strict build preserves
    // them). Each duplicate is a trivial cycle with its twin, so the
    // labelings exercise the certificate's handling of parallel
    // nontree edges.
    #[test]
    fn duplicate_edges_are_pinned(
        n in 4u32..40,
        extra in 1usize..30,
        seed in any::<u64>(),
    ) {
        let m = (2 * n as usize).min(gen::max_edges(n));
        let base = gen::random_connected(n, m, seed);
        let mut edges = base.edges().to_vec();
        for i in 0..extra {
            edges.push(base.edges()[(seed as usize + i * 7) % m]);
        }
        let g = GraphBuilder::new(n).edges(edges).build().unwrap();
        assert_pinned(&g, "duplicates");
    }

    // Disconnected soups where whole components are single vertices.
    #[test]
    fn sparse_disconnected_is_pinned(
        n in 10u32..80,
        m in 0usize..60,
        seed in any::<u64>(),
    ) {
        let g = gen::random_gnm(n, m.min(gen::max_edges(n)), seed);
        assert_pinned(&g, "sparse-gnm");
    }
}

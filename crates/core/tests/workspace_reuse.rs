//! Workspace-arena reuse across whole pipeline runs (satellite of the
//! zero-allocation-steady-state PR).
//!
//! Two properties:
//!
//! * **Transparency** — running with a shared [`BccWorkspace`] yields
//!   bit-identical `BccResult`s to fresh-allocation runs, across graph
//!   growth, shrinkage, and algorithm switches on the same arena.
//! * **Steady state** — a repeated identical run through
//!   [`BccConfig::run`] takes every scratch buffer from the shelf:
//!   zero arena misses, `PhaseReport::alloc_bytes == 0`,
//!   `arena_hit_rate == 1.0`, and the shelf stops growing.

use bcc_core::{Algorithm, BccConfig, BccWorkspace};
use bcc_graph::{gen, GraphBuilder};
use bcc_smp::Pool;
use std::sync::Arc;

const PARALLEL: [Algorithm; 4] = [
    Algorithm::TvSmp,
    Algorithm::TvOpt,
    Algorithm::TvFilter,
    Algorithm::FastBcc,
];

#[test]
fn shared_workspace_is_transparent_across_grow_shrink_and_alg_switch() {
    let pool = Pool::new(3);
    let big = gen::random_connected(400, 1_600, 11);
    let small = gen::torus(6, 6);
    let ws = Arc::new(BccWorkspace::new());
    // One arena serves every (algorithm, graph) combination in turn:
    // grow (small→big within an algorithm), shrink (big→small on the
    // next), and algorithm switches in between.
    for alg in PARALLEL {
        for g in [&small, &big, &small] {
            let fresh = BccConfig::new(alg).run(&pool, g).unwrap().result;
            let reused = BccConfig::new(alg)
                .workspace(Arc::clone(&ws))
                .run(&pool, g)
                .unwrap()
                .result;
            assert_eq!(reused.edge_comp, fresh.edge_comp, "{}", alg.name());
            assert_eq!(
                reused.num_components,
                fresh.num_components,
                "{}",
                alg.name()
            );
        }
    }
}

#[test]
fn repeated_identical_run_reaches_zero_miss_steady_state() {
    let g = gen::random_connected(300, 1_000, 7);
    for alg in PARALLEL {
        for p in [1usize, 2, 4] {
            let pool = Pool::new(p);
            let ws = Arc::new(BccWorkspace::new());
            let cfg = BccConfig::new(alg).workspace(Arc::clone(&ws));
            let cold = cfg.run(&pool, &g).unwrap();
            assert!(
                cold.report.alloc_bytes > 0,
                "{} p={p}: cold run must populate the arena",
                alg.name()
            );
            let before = ws.stats();
            let warm = cfg.run(&pool, &g).unwrap();
            let delta = ws.stats().delta_since(&before);
            assert_eq!(
                delta.misses,
                0,
                "{} p={p}: warmed rerun must serve every take from the shelf",
                alg.name()
            );
            assert!(
                delta.hits > 0,
                "{} p={p}: pipeline must use the arena",
                alg.name()
            );
            assert_eq!(warm.report.alloc_bytes, 0, "{} p={p}", alg.name());
            assert_eq!(warm.report.arena_hit_rate, 1.0, "{} p={p}", alg.name());
            assert_eq!(warm.result.edge_comp, cold.result.edge_comp);

            // The shelf is in equilibrium: further identical runs
            // neither allocate nor accumulate buffers.
            let shelved = ws.shelved_buffers();
            cfg.run(&pool, &g).unwrap();
            assert_eq!(
                ws.shelved_buffers(),
                shelved,
                "{} p={p}: shelf must not grow run-over-run",
                alg.name()
            );
        }
    }
}

#[test]
fn smaller_graph_reuses_a_larger_graphs_arena_without_misses() {
    let pool = Pool::new(2);
    let big = gen::random_connected(500, 2_000, 3);
    let small = gen::random_connected(120, 400, 5);
    for alg in PARALLEL {
        let ws = Arc::new(BccWorkspace::new());
        let cfg = BccConfig::new(alg).workspace(Arc::clone(&ws));
        // Warm on the small graph first so every size class the small
        // graph needs exists, then on the big one (supersedes the small
        // classes), then measure the small graph again.
        cfg.run(&pool, &small).unwrap();
        cfg.run(&pool, &big).unwrap();
        let before = ws.stats();
        let run = cfg.run(&pool, &small).unwrap();
        let delta = ws.stats().delta_since(&before);
        assert_eq!(delta.misses, 0, "{}: small-after-big must hit", alg.name());
        assert_eq!(run.report.alloc_bytes, 0, "{}", alg.name());
    }
}

#[test]
fn disconnected_error_path_returns_buffers_to_the_arena() {
    let g = GraphBuilder::new(6)
        .edges([(0, 1), (1, 2), (3, 4), (4, 5)])
        .build()
        .unwrap();
    let pool = Pool::new(2);
    for alg in PARALLEL {
        let ws = Arc::new(BccWorkspace::new());
        let cfg = BccConfig::new(alg).workspace(Arc::clone(&ws));
        assert!(cfg.run(&pool, &g).is_err());
        let before = ws.stats();
        assert!(cfg.run(&pool, &g).is_err());
        let delta = ws.stats().delta_since(&before);
        assert_eq!(
            delta.misses,
            0,
            "{}: failed runs must still recycle their scratch",
            alg.name()
        );
        // run_any succeeds on the same arena afterwards and agrees with
        // the sequential oracle.
        let base = BccConfig::new(Algorithm::Sequential)
            .run_any(&pool, &g)
            .unwrap()
            .result;
        let r = cfg.run_any(&pool, &g).unwrap().result;
        assert_eq!(r.edge_comp, base.edge_comp, "{}", alg.name());
    }
}

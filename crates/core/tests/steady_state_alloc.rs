//! Steady-state allocation counting for the whole pipeline, behind the
//! debug-only [`bcc_smp::CountingAlloc`].
//!
//! This is a dedicated single-`#[test]` binary: the counting allocator
//! wraps the *global* allocator, and `cargo test` runs tests of one
//! binary concurrently, so any second test here would pollute the
//! counters.
//!
//! The property: once a shared [`BccWorkspace`] is warm, a repeated
//! identical run through [`BccConfig::run`] performs **zero arena
//! misses** and sheds the scratch-allocation traffic entirely. The warm
//! run still allocates the structures that deliberately stay plain —
//! the escaping `edge_comp` result, the `PhaseReport`, and (for the
//! CSR-based pipelines) the adjacency structure and traversal internals
//! — so the calibrated bounds below assert a strict drop in allocator
//! *calls* and at least a 2x drop in allocated *bytes*, not literal
//! zero. Measured at calibration time (n=2000, m=10000, p=4): warm vs
//! cold allocator calls were 43/80 (TV-SMP), 82/139 (TV-opt), 129/170
//! (TV-filter); warm bytes dropped 2.4x (TV-filter, plain CSR + three
//! m-sized output vectors) to 30x+ (TV-SMP).

use bcc_core::{Algorithm, BccConfig, BccWorkspace};
use bcc_graph::gen;
use bcc_smp::{CountingAlloc, Pool};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn warmed_rerun_sheds_all_scratch_allocation() {
    let g = gen::random_connected(2_000, 10_000, 42);
    let pool = Pool::new(4);
    for alg in [
        Algorithm::TvSmp,
        Algorithm::TvOpt,
        Algorithm::TvFilter,
        Algorithm::FastBcc,
    ] {
        let ws = Arc::new(BccWorkspace::new());
        let cfg = BccConfig::new(alg).workspace(Arc::clone(&ws));

        // Cold run: populates the arena (every take is a miss).
        let cold_allocs_before = CountingAlloc::allocations();
        let cold_bytes_before = CountingAlloc::allocated_bytes();
        let cold = cfg.run(&pool, &g).unwrap();
        let cold_allocs = CountingAlloc::allocations() - cold_allocs_before;
        let cold_bytes = CountingAlloc::allocated_bytes() - cold_bytes_before;
        assert!(cold.report.alloc_bytes > 0);

        // Warm run: the arena serves every scratch take.
        let ws_before = ws.stats();
        let warm_allocs_before = CountingAlloc::allocations();
        let warm_bytes_before = CountingAlloc::allocated_bytes();
        let warm = cfg.run(&pool, &g).unwrap();
        let warm_allocs = CountingAlloc::allocations() - warm_allocs_before;
        let warm_bytes = CountingAlloc::allocated_bytes() - warm_bytes_before;
        let delta = ws.stats().delta_since(&ws_before);

        assert_eq!(
            delta.misses,
            0,
            "{}: arena miss on warmed rerun",
            alg.name()
        );
        assert_eq!(warm.report.alloc_bytes, 0, "{}", alg.name());
        assert_eq!(warm.result.edge_comp, cold.result.edge_comp);
        assert!(
            warm_allocs < cold_allocs,
            "{}: warm run made {warm_allocs} allocator calls vs {cold_allocs} cold",
            alg.name()
        );
        // FAST-BCC's cold side is already O(n)-lean (no tour arrays,
        // no ranking scratch, no O(m) candidate copies), so there is
        // far less to shed: the arena saves ~40% of bytes, not 2x+.
        // The plain remainder is the CSR, the BFS internals, and the
        // two escaping m-sized outputs — same as TV-filter's warm run.
        let required_drop_pct = match alg {
            Algorithm::FastBcc => 125,
            _ => 200,
        };
        assert!(
            warm_bytes * required_drop_pct <= cold_bytes * 100,
            "{}: warm run allocated {warm_bytes} bytes vs {cold_bytes} cold — \
             expected at least a {required_drop_pct}% drop",
            alg.name()
        );
    }
}

//! Per-step timing, the instrumentation behind the paper's Fig. 4
//! (execution-time breakdown at fixed processor count).

use std::time::{Duration, Instant};

/// Wall-clock time of each pipeline step. Steps that an algorithm does
/// not perform stay zero (e.g. `filtering` for TV-SMP/TV-opt; TV-opt's
/// merged rooting leaves `root_tree` for the tree computations).
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Spanning-tree step (TV-filter: the BFS tree).
    pub spanning_tree: Duration,
    /// Euler-tour construction (classic or DFS-order).
    pub euler_tour: Duration,
    /// Root-tree / tree computations (preorder, sizes, depths).
    pub root_tree: Duration,
    /// Low-high values.
    pub low_high: Duration,
    /// Label-edge: building the auxiliary graph (paper Alg. 1).
    pub label_edge: Duration,
    /// Connected components of the auxiliary graph + label write-back.
    pub connected_components: Duration,
    /// TV-filter only: spanning forest of G − T and edge filtering.
    pub filtering: Duration,
    /// End-to-end time (≥ sum of the steps; includes glue).
    pub total: Duration,
}

impl PhaseTimes {
    /// Sum of the individual steps (excludes `total`).
    pub fn step_sum(&self) -> Duration {
        self.spanning_tree
            + self.euler_tour
            + self.root_tree
            + self.low_high
            + self.label_edge
            + self.connected_components
            + self.filtering
    }

    /// `(name, duration)` pairs in the paper's Fig. 4 order.
    pub fn named(&self) -> [(&'static str, Duration); 7] {
        [
            ("Spanning-tree", self.spanning_tree),
            ("Euler-tour", self.euler_tour),
            ("Root", self.root_tree),
            ("Low-high", self.low_high),
            ("Label-edge", self.label_edge),
            ("Connected-comp", self.connected_components),
            ("Filtering", self.filtering),
        ]
    }
}

/// Measures one phase: `stopwatch(&mut times.low_high, || ...)`.
pub fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    *slot += start.elapsed();
    out
}

/// Machine-independent work counters, filled by every pipeline run.
///
/// Wall-clock on a given host mixes algorithm work with hardware
/// effects; these counters capture the *work* side of the paper's
/// analysis (e.g. TV-filter's `edges_after_filter <= 2(n-1)`) so the
/// reproduction claims can be checked on any machine.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Edges of the input graph.
    pub input_edges: usize,
    /// Edges actually fed to steps 4–6 (reduced set for TV-filter,
    /// `input_edges` otherwise).
    pub effective_edges: usize,
    /// Edges removed by filtering (TV-filter only).
    pub filtered_edges: usize,
    /// Vertices of the auxiliary graph (n + nontree edges considered).
    pub aux_vertices: u32,
    /// Edges of the auxiliary graph (|R'_c| — the paper's Fig. 1
    /// quantity).
    pub aux_edges: usize,
    /// Graft-and-shortcut rounds of the spanning-tree SV run (0 when a
    /// traversal-based tree was used).
    pub sv_rounds_spanning: u32,
    /// Graft-and-shortcut rounds of the step-6 SV run.
    pub sv_rounds_cc: u32,
    /// BFS levels (TV-filter only; the `O(d)` term of Alg. 2).
    pub bfs_levels: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::ZERO;
        let x = timed(&mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(x, 42);
        assert!(d >= Duration::from_millis(5));
        timed(&mut d, || ());
        assert!(d >= Duration::from_millis(5));
    }

    #[test]
    fn step_sum_and_named_agree() {
        let t = PhaseTimes {
            spanning_tree: Duration::from_millis(1),
            filtering: Duration::from_millis(2),
            ..PhaseTimes::default()
        };
        assert_eq!(t.step_sum(), Duration::from_millis(3));
        let total: Duration = t.named().iter().map(|&(_, d)| d).sum();
        assert_eq!(total, t.step_sum());
    }
}

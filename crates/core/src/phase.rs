//! Per-step timing, the instrumentation behind the paper's Fig. 4
//! (execution-time breakdown at fixed processor count).
//!
//! Two layers:
//!
//! * [`PhaseTimes`] / [`PipelineStats`] — the flat per-run numbers the
//!   original harness consumed (kept for compatibility).
//! * [`PhaseReport`] — the structured record produced by
//!   [`BccConfig::run`](crate::BccConfig::run): per-step durations
//!   *plus* per-step barrier-wait and load-imbalance (when the pool
//!   carries a [`Telemetry`] sink) and the input sizes that contextualize
//!   them (n, m, effective/filtered edge counts).

use bcc_smp::telemetry::{Telemetry, TelemetrySnapshot};
use bcc_smp::{BccWorkspace, WorkspaceStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one pipeline step (the rows of the paper's Fig. 4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Spanning-tree construction (TV-filter: the BFS tree).
    SpanningTree,
    /// Euler-tour construction (classic or DFS-order).
    EulerTour,
    /// Root-tree / tree computations (preorder, sizes, depths).
    RootTree,
    /// Low-high values.
    LowHigh,
    /// Label-edge: building the auxiliary graph (paper Alg. 1).
    LabelEdge,
    /// Connected components of the auxiliary graph + label write-back.
    ConnectedComponents,
    /// TV-filter only: filtering and filtered-edge placement.
    Filtering,
}

impl Step {
    /// All steps in the paper's Fig. 4 order.
    pub const ALL: [Step; 7] = [
        Step::SpanningTree,
        Step::EulerTour,
        Step::RootTree,
        Step::LowHigh,
        Step::LabelEdge,
        Step::ConnectedComponents,
        Step::Filtering,
    ];

    /// Display name matching [`PhaseTimes::named`].
    pub fn name(self) -> &'static str {
        match self {
            Step::SpanningTree => "Spanning-tree",
            Step::EulerTour => "Euler-tour",
            Step::RootTree => "Root",
            Step::LowHigh => "Low-high",
            Step::LabelEdge => "Label-edge",
            Step::ConnectedComponents => "Connected-comp",
            Step::Filtering => "Filtering",
        }
    }
}

/// Wall-clock time of each pipeline step. Steps that an algorithm does
/// not perform stay zero (e.g. `filtering` for TV-SMP/TV-opt; TV-opt's
/// merged rooting leaves `root_tree` for the tree computations).
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Spanning-tree step (TV-filter: the BFS tree).
    pub spanning_tree: Duration,
    /// Euler-tour construction (classic or DFS-order).
    pub euler_tour: Duration,
    /// Root-tree / tree computations (preorder, sizes, depths).
    pub root_tree: Duration,
    /// Low-high values.
    pub low_high: Duration,
    /// Label-edge: building the auxiliary graph (paper Alg. 1).
    pub label_edge: Duration,
    /// Connected components of the auxiliary graph + label write-back.
    pub connected_components: Duration,
    /// TV-filter only: spanning forest of G − T and edge filtering.
    pub filtering: Duration,
    /// End-to-end time (≥ sum of the steps; includes glue).
    pub total: Duration,
}

impl PhaseTimes {
    /// Mutable slot for one step's accumulated duration.
    pub fn slot_mut(&mut self, step: Step) -> &mut Duration {
        match step {
            Step::SpanningTree => &mut self.spanning_tree,
            Step::EulerTour => &mut self.euler_tour,
            Step::RootTree => &mut self.root_tree,
            Step::LowHigh => &mut self.low_high,
            Step::LabelEdge => &mut self.label_edge,
            Step::ConnectedComponents => &mut self.connected_components,
            Step::Filtering => &mut self.filtering,
        }
    }

    /// Sum of the individual steps (excludes `total`).
    pub fn step_sum(&self) -> Duration {
        self.spanning_tree
            + self.euler_tour
            + self.root_tree
            + self.low_high
            + self.label_edge
            + self.connected_components
            + self.filtering
    }

    /// `(name, duration)` pairs in the paper's Fig. 4 order.
    pub fn named(&self) -> [(&'static str, Duration); 7] {
        [
            ("Spanning-tree", self.spanning_tree),
            ("Euler-tour", self.euler_tour),
            ("Root", self.root_tree),
            ("Low-high", self.low_high),
            ("Label-edge", self.label_edge),
            ("Connected-comp", self.connected_components),
            ("Filtering", self.filtering),
        ]
    }
}

/// Measures one phase: `stopwatch(&mut times.low_high, || ...)`.
pub fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    *slot += start.elapsed();
    out
}

/// Machine-independent work counters, filled by every pipeline run.
///
/// Wall-clock on a given host mixes algorithm work with hardware
/// effects; these counters capture the *work* side of the paper's
/// analysis (e.g. TV-filter's `edges_after_filter <= 2(n-1)`) so the
/// reproduction claims can be checked on any machine.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Edges of the input graph.
    pub input_edges: usize,
    /// Edges actually fed to steps 4–6 (reduced set for TV-filter,
    /// `input_edges` otherwise).
    pub effective_edges: usize,
    /// Edges removed by filtering (TV-filter only).
    pub filtered_edges: usize,
    /// Vertices of the auxiliary graph (n + nontree edges considered).
    pub aux_vertices: u32,
    /// Edges of the auxiliary graph (|R'_c| — the paper's Fig. 1
    /// quantity).
    pub aux_edges: usize,
    /// Graft rounds of the spanning-tree SV run: TV-SMP's step 1, or
    /// TV-filter's forest-of-`G − T` run (0 when a traversal-based tree
    /// was used).
    pub sv_rounds_spanning: u32,
    /// Graft rounds of the step-6 SV run.
    pub sv_rounds_cc: u32,
    /// BFS levels (TV-filter only; the `O(d)` term of Alg. 2).
    pub bfs_levels: u32,
    /// Vertices discovered per BFS level (TV-filter only; empty
    /// otherwise). Feeds effective-diameter estimates in the benchmarks.
    pub bfs_frontier_sizes: Vec<u32>,
    /// BFS levels the direction-optimizing heuristic ran bottom-up
    /// (0 under the pure top-down strategy).
    pub bfs_bottom_up_levels: u32,
    /// Chosen direction per BFS level, compactly: `T` = top-down,
    /// `B` = bottom-up (e.g. `"TTBBT"`; empty when no BFS ran).
    pub bfs_directions: String,
}

/// One step of a [`PhaseReport`]: duration plus the telemetry split for
/// exactly this step's pool activity.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Which step.
    pub step: Step,
    /// Accumulated wall-clock time of the step.
    pub duration: Duration,
    /// Total barrier-wait time across all threads during the step
    /// (zero without a telemetry sink).
    pub barrier_wait: Duration,
    /// Load-imbalance ratio (max busy / mean busy) of the step's pool
    /// phases; `1.0` without a telemetry sink or pool work.
    pub imbalance: f64,
    /// Per-thread busy time during the step (empty without telemetry).
    pub busy: Vec<Duration>,
    /// Bytes freshly heap-allocated through the run's [`BccWorkspace`]
    /// during the step (arena misses; 0 without a workspace-aware
    /// recorder, and 0 in the steady state when every take hits).
    pub alloc_bytes: u64,
}

impl StepReport {
    /// Display name of the step.
    pub fn name(&self) -> &'static str {
        self.step.name()
    }
}

/// Structured record of one pipeline run: sizes, per-step breakdown,
/// and synchronization/imbalance statistics.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Algorithm display name (matching the paper's figures).
    pub algorithm: &'static str,
    /// SPMD thread count of the pool that ran the pipeline.
    pub threads: usize,
    /// Input vertices.
    pub n: u32,
    /// Input edges.
    pub m: usize,
    /// Edges fed to steps 4–6 (reduced set for TV-filter).
    pub effective_edges: usize,
    /// Edges removed by filtering (TV-filter only).
    pub filtered_edges: usize,
    /// Per-step reports in execution order (only steps that ran).
    pub steps: Vec<StepReport>,
    /// End-to-end wall-clock time (≥ step sum; includes glue).
    pub total: Duration,
    /// `Pool::run` phases issued during the run (0 without telemetry).
    pub phase_runs: u64,
    /// Barrier episodes completed during the run (0 without telemetry).
    pub barrier_episodes: u64,
    /// Total barrier-wait time across threads (zero without telemetry).
    pub barrier_wait: Duration,
    /// Whole-run load-imbalance ratio (`1.0` without telemetry).
    pub imbalance: f64,
    /// Bytes freshly heap-allocated through the run's [`BccWorkspace`]
    /// (arena misses; 0 without a workspace-aware recorder).
    pub alloc_bytes: u64,
    /// Fraction of workspace takes served from the arena shelf
    /// (`1.0` when every take hit, or when no workspace was observed).
    pub arena_hit_rate: f64,
    /// Snapshot-lag observations recorded through the telemetry sink
    /// during the run (0 without telemetry, or when nothing was
    /// answered from an epoch snapshot — classic batch pipelines).
    pub snapshot_lag_samples: u64,
    /// Mean observed snapshot lag, in commits behind the latest epoch.
    pub snapshot_lag_commits_mean: f64,
    /// Worst observed snapshot lag, in commits (high-water mark of the
    /// sink — see `TelemetrySnapshot::delta_since`).
    pub snapshot_lag_commits_max: u64,
    /// Mean observed snapshot age (wall time since publication).
    pub snapshot_lag_wall_mean: Duration,
    /// Worst observed snapshot age (high-water mark of the sink).
    pub snapshot_lag_wall_max: Duration,
    /// Operations shed by admission control during the run (0 without
    /// telemetry, or when no serving layer was involved).
    pub shed_count: u64,
    /// The run's machine-independent work counters.
    pub stats: PipelineStats,
}

impl PhaseReport {
    /// Sum of the per-step durations (excludes glue; `<= total`).
    pub fn step_sum(&self) -> Duration {
        self.steps.iter().map(|s| s.duration).sum()
    }

    /// The report for `step`, if that step ran.
    pub fn step(&self, step: Step) -> Option<&StepReport> {
        self.steps.iter().find(|s| s.step == step)
    }
}

/// Accumulates per-step durations and telemetry deltas while a pipeline
/// runs; [`finish`](PhaseRecorder::finish)ing it yields the
/// [`PhaseReport`]. Repeated steps (TV-filter's two filtering
/// sub-phases, per-component reruns) merge into one entry.
pub struct PhaseRecorder<'a> {
    phases: PhaseTimes,
    order: Vec<Step>,
    accum: [Option<StepAccum>; 7],
    telem: Option<&'a Telemetry>,
    first: Option<TelemetrySnapshot>,
    prev: Option<TelemetrySnapshot>,
    ws: Option<Arc<BccWorkspace>>,
    ws_first: WorkspaceStats,
    ws_prev: WorkspaceStats,
}

struct StepAccum {
    duration: Duration,
    barrier_wait: Duration,
    busy: Vec<Duration>,
    alloc_bytes: u64,
}

fn step_index(step: Step) -> usize {
    Step::ALL.iter().position(|&s| s == step).unwrap()
}

impl<'a> PhaseRecorder<'a> {
    /// A recorder reading telemetry deltas from `telem` (pass the
    /// pool's sink, or `None` for timing-only reports).
    pub fn new(telem: Option<&'a Telemetry>) -> Self {
        Self::with_workspace(telem, None)
    }

    /// Like [`new`](PhaseRecorder::new), additionally observing `ws`:
    /// each step's arena-miss bytes land in
    /// [`StepReport::alloc_bytes`], and the whole-run delta fills
    /// [`PhaseReport::alloc_bytes`] / [`PhaseReport::arena_hit_rate`].
    pub fn with_workspace(telem: Option<&'a Telemetry>, ws: Option<Arc<BccWorkspace>>) -> Self {
        let first = telem.map(|t| t.snapshot());
        let ws_first = ws.as_ref().map(|w| w.stats()).unwrap_or_default();
        PhaseRecorder {
            phases: PhaseTimes::default(),
            order: Vec::new(),
            accum: Default::default(),
            telem,
            first: first.clone(),
            prev: first,
            ws,
            ws_first,
            ws_prev: ws_first,
        }
    }

    /// The flat times accumulated so far.
    pub fn phases(&self) -> &PhaseTimes {
        &self.phases
    }

    /// Times `f` as one execution of `step`, attributing the pool's
    /// telemetry movement during `f` to that step.
    pub fn step<T>(&mut self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let duration = start.elapsed();
        *self.phases.slot_mut(step) += duration;

        let (barrier_wait, busy) = match self.telem {
            None => (Duration::ZERO, Vec::new()),
            Some(t) => {
                let now = t.snapshot();
                let delta = now.delta_since(self.prev.as_ref().unwrap());
                self.prev = Some(now);
                (delta.total_barrier_wait(), delta.busy)
            }
        };

        let alloc_bytes = match &self.ws {
            None => 0,
            Some(w) => {
                let now = w.stats();
                let delta = now.delta_since(&self.ws_prev);
                self.ws_prev = now;
                delta.bytes_allocated
            }
        };

        let slot = &mut self.accum[step_index(step)];
        match slot {
            None => {
                self.order.push(step);
                *slot = Some(StepAccum {
                    duration,
                    barrier_wait,
                    busy,
                    alloc_bytes,
                });
            }
            Some(acc) => {
                acc.duration += duration;
                acc.barrier_wait += barrier_wait;
                acc.alloc_bytes += alloc_bytes;
                if acc.busy.len() < busy.len() {
                    acc.busy.resize(busy.len(), Duration::ZERO);
                }
                for (a, b) in acc.busy.iter_mut().zip(busy) {
                    *a += b;
                }
            }
        }
        out
    }

    /// Builds the report. `total` should be the pipeline's end-to-end
    /// time; sizes and `stats` come from the finished run.
    pub fn finish(
        mut self,
        algorithm: &'static str,
        threads: usize,
        n: u32,
        m: usize,
        stats: PipelineStats,
        total: Duration,
    ) -> PhaseReport {
        let steps = self
            .order
            .iter()
            .map(|&step| {
                let acc = self.accum[step_index(step)].take().unwrap();
                StepReport {
                    step,
                    duration: acc.duration,
                    barrier_wait: acc.barrier_wait,
                    imbalance: imbalance_of(&acc.busy),
                    busy: acc.busy,
                    alloc_bytes: acc.alloc_bytes,
                }
            })
            .collect();

        let whole_run = self
            .telem
            .map(|t| t.snapshot().delta_since(self.first.as_ref().unwrap()));
        let (phase_runs, barrier_episodes, barrier_wait, imbalance) = match &whole_run {
            None => (0, 0, Duration::ZERO, 1.0),
            Some(delta) => (
                delta.phase_runs,
                delta.barrier_episodes,
                delta.total_barrier_wait(),
                delta.imbalance(),
            ),
        };
        let (lag_samples, lag_commits_mean, lag_commits_max, lag_wall_mean, lag_wall_max) =
            match &whole_run {
                None => (0, 0.0, 0, Duration::ZERO, Duration::ZERO),
                Some(delta) => (
                    delta.snapshot_lag_samples,
                    delta.snapshot_lag_mean_commits(),
                    delta.snapshot_lag_commits_max,
                    delta.snapshot_lag_mean_wall(),
                    delta.snapshot_lag_wall_max,
                ),
            };

        let (alloc_bytes, arena_hit_rate) = match &self.ws {
            None => (0, 1.0),
            Some(w) => {
                let delta = w.stats().delta_since(&self.ws_first);
                (delta.bytes_allocated, delta.hit_rate())
            }
        };

        PhaseReport {
            algorithm,
            threads,
            n,
            m,
            effective_edges: stats.effective_edges,
            filtered_edges: stats.filtered_edges,
            steps,
            total,
            phase_runs,
            barrier_episodes,
            barrier_wait,
            imbalance,
            alloc_bytes,
            arena_hit_rate,
            snapshot_lag_samples: lag_samples,
            snapshot_lag_commits_mean: lag_commits_mean,
            snapshot_lag_commits_max: lag_commits_max,
            snapshot_lag_wall_mean: lag_wall_mean,
            snapshot_lag_wall_max: lag_wall_max,
            shed_count: whole_run.as_ref().map_or(0, |d| d.sheds),
            stats,
        }
    }
}

fn imbalance_of(busy: &[Duration]) -> f64 {
    let max = busy.iter().max().copied().unwrap_or_default();
    let sum: Duration = busy.iter().sum();
    if sum.is_zero() {
        return 1.0;
    }
    max.as_secs_f64() / (sum.as_secs_f64() / busy.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::ZERO;
        let x = timed(&mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(x, 42);
        assert!(d >= Duration::from_millis(5));
        timed(&mut d, || ());
        assert!(d >= Duration::from_millis(5));
    }

    #[test]
    fn recorder_merges_repeated_steps_in_first_seen_order() {
        let mut rec = PhaseRecorder::new(None);
        rec.step(Step::Filtering, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        rec.step(Step::SpanningTree, || ());
        rec.step(Step::Filtering, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        let report = rec.finish(
            "TV-filter",
            2,
            10,
            20,
            PipelineStats::default(),
            Duration::from_secs(1),
        );
        assert_eq!(report.steps.len(), 2);
        assert_eq!(report.steps[0].step, Step::Filtering);
        assert_eq!(report.steps[1].step, Step::SpanningTree);
        assert!(report.steps[0].duration >= Duration::from_millis(4));
        assert!(report.step(Step::LowHigh).is_none());
        assert!(report.step(Step::Filtering).is_some());
    }

    #[test]
    fn recorder_attributes_telemetry_deltas_per_step() {
        use bcc_smp::Pool;
        use std::sync::Arc;
        let sink = Arc::new(Telemetry::new(2));
        let pool = Pool::builder()
            .threads(2)
            .telemetry(Arc::clone(&sink))
            .build();
        let mut rec = PhaseRecorder::new(Some(&sink));
        rec.step(Step::SpanningTree, || {
            pool.run(|ctx| {
                if ctx.tid() == 0 {
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        });
        rec.step(Step::EulerTour, || {
            // No pool work: deltas must be zero for this step.
        });
        let report = rec.finish(
            "TV-opt",
            2,
            5,
            5,
            PipelineStats::default(),
            Duration::from_millis(20),
        );
        let st = report.step(Step::SpanningTree).unwrap();
        assert!(st.busy[0] >= Duration::from_millis(5), "{:?}", st.busy);
        assert!(st.imbalance > 1.0);
        let et = report.step(Step::EulerTour).unwrap();
        assert_eq!(et.busy.iter().sum::<Duration>(), Duration::ZERO);
        assert_eq!(et.imbalance, 1.0);
        assert_eq!(report.phase_runs, 1);
        assert_eq!(report.barrier_episodes, 1);
    }

    #[test]
    fn recorder_routes_snapshot_lag_from_the_sink() {
        let sink = Telemetry::new(1);
        let rec = PhaseRecorder::new(Some(&sink));
        // A serving reader elsewhere reports two answers' staleness.
        sink.record_snapshot_lag(2, Duration::from_micros(50));
        sink.record_snapshot_lag(4, Duration::from_micros(150));
        sink.record_shed(3);
        let report = rec.finish(
            "TV-filter",
            1,
            1,
            1,
            PipelineStats::default(),
            Duration::ZERO,
        );
        assert_eq!(report.snapshot_lag_samples, 2);
        assert!((report.snapshot_lag_commits_mean - 3.0).abs() < 1e-9);
        assert_eq!(report.snapshot_lag_commits_max, 4);
        assert_eq!(report.snapshot_lag_wall_mean, Duration::from_micros(100));
        assert_eq!(report.snapshot_lag_wall_max, Duration::from_micros(150));
        assert_eq!(report.shed_count, 3);

        // Without a sink the fields are inert zeros.
        let report = PhaseRecorder::new(None).finish(
            "TV-opt",
            1,
            1,
            1,
            PipelineStats::default(),
            Duration::ZERO,
        );
        assert_eq!(report.snapshot_lag_samples, 0);
        assert_eq!(report.snapshot_lag_wall_max, Duration::ZERO);
    }

    #[test]
    fn step_names_match_phase_times_named() {
        let times = PhaseTimes::default();
        for (step, (name, _)) in Step::ALL.iter().zip(times.named()) {
            assert_eq!(step.name(), name);
        }
    }

    #[test]
    fn step_sum_and_named_agree() {
        let t = PhaseTimes {
            spanning_tree: Duration::from_millis(1),
            filtering: Duration::from_millis(2),
            ..PhaseTimes::default()
        };
        assert_eq!(t.step_sum(), Duration::from_millis(3));
        let total: Duration = t.named().iter().map(|&(_, d)| d).sum();
        assert_eq!(total, t.step_sum());
    }
}

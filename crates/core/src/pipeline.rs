//! The four biconnected-components algorithms of the paper's study —
//! `Sequential`, `TV-SMP`, `TV-opt`, and `TV-filter` — plus the
//! skeleton-based `FAST-BCC` successor ([`crate::fast_bcc`]).
//!
//! All parallel pipelines share steps 4–6 (Low-high, Label-edge,
//! Connected-components — [`tv_tail`]); they differ in how the rooted
//! spanning tree and its tags are produced, and TV-filter/FAST-BCC
//! shrink the edge set first.
//!
//! The entry point is [`BccConfig`]: select an algorithm, optionally a
//! list ranker and a telemetry sink, then [`run`](BccConfig::run) it on
//! a pool. Each run yields a [`BccRun`] — the component labels plus a
//! structured [`PhaseReport`] (per-step durations, barrier-wait and
//! load-imbalance when the pool carries telemetry) that regenerates the
//! paper's Fig. 4 breakdown.
//!
//! ```
//! use bcc_core::{Algorithm, BccConfig};
//! use bcc_graph::gen;
//! use bcc_smp::Pool;
//!
//! let pool = Pool::new(2);
//! let g = gen::two_cliques_sharing_vertex(4);
//! let run = BccConfig::new(Algorithm::TvFilter).run(&pool, &g).unwrap();
//! assert_eq!(run.result.num_components, 2);
//! assert!(run.report.step_sum() <= run.report.total);
//! ```

use crate::aux_graph::build_aux_graph_fused_ws;
use crate::low_high::{compute_low_high_with_ws, LowHighMethod};
use crate::phase::{PhaseRecorder, PhaseReport, PhaseTimes, PipelineStats, Step};
use crate::tarjan::tarjan_bcc;
use crate::verify::canonicalize_edge_labels;
use bcc_connectivity::bfs::bfs_tree_ws;
use bcc_connectivity::sv::connected_components_with_ws;
use bcc_connectivity::traversal::work_stealing_tree;
use bcc_connectivity::tuning::TraversalTuning;
use bcc_connectivity::BfsDirection;
use bcc_euler::{dfs_euler_tour_ws, euler_tour_classic_ws, tree_computations_ws, Ranker, TreeInfo};
use bcc_graph::{Csr, Edge, Graph};
use bcc_smp::telemetry::Telemetry;
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};
use std::sync::Arc;
use std::time::Instant;

/// Algorithm selector for [`biconnected_components`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Tarjan's linear-time DFS (the paper's sequential baseline).
    Sequential,
    /// Direct SMP emulation of Tarjan–Vishkin (paper §3.1).
    TvSmp,
    /// Algorithm-engineered TV (paper §3.2).
    TvOpt,
    /// TV with non-essential-edge filtering (paper §4, Alg. 2).
    TvFilter,
    /// Skeleton-based sparse-certificate biconnectivity (Dong, Wang,
    /// Gu & Sun, SPAA 2023): tree tags computed directly on the BFS
    /// tree — no Euler tour, no list ranking — for an O(n) auxiliary
    /// footprint.
    FastBcc,
}

impl Algorithm {
    /// All algorithms, in presentation order (the paper's four, then
    /// the FAST-BCC successor).
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Sequential,
        Algorithm::TvSmp,
        Algorithm::TvOpt,
        Algorithm::TvFilter,
        Algorithm::FastBcc,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sequential => "Sequential",
            Algorithm::TvSmp => "TV-SMP",
            Algorithm::TvOpt => "TV-opt",
            Algorithm::TvFilter => "TV-filter",
            Algorithm::FastBcc => "FAST-BCC",
        }
    }
}

/// Why a computation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BccError {
    /// The parallel TV pipelines require a connected input graph; use
    /// [`BccConfig::run_any`] for general graphs.
    Disconnected,
}

impl std::fmt::Display for BccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BccError::Disconnected => {
                write!(f, "input graph is not connected (TV requires connectivity)")
            }
        }
    }
}

impl std::error::Error for BccError {}

/// Per-edge biconnected components of a connected graph.
#[derive(Clone, Debug)]
pub struct BccResult {
    /// Canonical component label per edge (`0..num_components`, numbered
    /// by first appearance in the edge list) — identical across
    /// algorithms and thread counts.
    pub edge_comp: Vec<u32>,
    /// Number of biconnected components.
    pub num_components: u32,
    /// Wall-clock breakdown by pipeline step.
    pub phases: PhaseTimes,
    /// Machine-independent work counters.
    pub stats: PipelineStats,
}

impl BccResult {
    /// Articulation (cut) vertices, ascending.
    pub fn articulation_points(&self, g: &Graph) -> Vec<u32> {
        crate::verify::articulation_points(g, &self.edge_comp)
    }

    /// Bridge edges (edge indices), ascending.
    pub fn bridges(&self, g: &Graph) -> Vec<u32> {
        crate::verify::bridges(g, &self.edge_comp)
    }
}

/// Configured biconnected-components computation: the algorithm plus
/// the knobs that used to be separate entry points.
///
/// ```
/// use bcc_core::{Algorithm, BccConfig, Ranker};
/// use bcc_graph::gen;
/// use bcc_smp::Pool;
///
/// let pool = Pool::new(2);
/// let g = gen::torus(4, 4);
/// let run = BccConfig::new(Algorithm::TvSmp)
///     .ranker(Ranker::Wyllie)
///     .run(&pool, &g)
///     .unwrap();
/// assert_eq!(run.result.num_components, 1);
/// assert_eq!(run.report.algorithm, "TV-SMP");
/// ```
#[derive(Clone, Debug)]
pub struct BccConfig {
    alg: Algorithm,
    ranker: Ranker,
    tuning: TraversalTuning,
    telemetry: Option<Arc<Telemetry>>,
    workspace: Option<Arc<BccWorkspace>>,
}

impl BccConfig {
    /// A configuration running `alg` with default knobs (Helman–JáJá
    /// list ranking, the fast traversal variants, telemetry taken from
    /// the pool if it has any).
    pub fn new(alg: Algorithm) -> Self {
        BccConfig {
            alg,
            ranker: Ranker::HelmanJaja,
            tuning: TraversalTuning::default(),
            telemetry: None,
            workspace: None,
        }
    }

    /// Selects the list-ranking algorithm (TV-SMP's classic Euler tour
    /// only; the ablation hook formerly exposed as
    /// `tv_smp_with_ranker`).
    pub fn ranker(mut self, ranker: Ranker) -> Self {
        self.ranker = ranker;
        self
    }

    /// Selects the traversal variants: the BFS direction strategy used
    /// by TV-filter's spanning tree and the SV flavor used for TV-SMP's
    /// spanning tree and the shared step-6 tail. Defaults to
    /// [`TraversalTuning::fast`]; pass [`TraversalTuning::classic`] (or
    /// a parsed ablation spec) to benchmark the baselines.
    pub fn tuning(mut self, tuning: TraversalTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The configured traversal tuning.
    pub fn traversal_tuning(&self) -> TraversalTuning {
        self.tuning
    }

    /// Reads telemetry deltas from `sink` instead of the pool's own
    /// sink. Pass the sink the pool was built with
    /// ([`Pool::builder`]) — a sink the pool does not record into
    /// yields all-zero synchronization stats.
    pub fn telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Draws every scratch buffer of the run from `ws` and returns the
    /// buffers there afterwards. Sharing one workspace across runs puts
    /// the pipeline in its zero-allocation steady state: a second run of
    /// the same (or a smaller) graph serves all scratch from the arena
    /// shelf instead of the system allocator. Arena movement lands in
    /// [`PhaseReport::alloc_bytes`] / [`PhaseReport::arena_hit_rate`].
    /// Without this, each run uses a private transient workspace (same
    /// results, no cross-run reuse).
    pub fn workspace(mut self, ws: Arc<BccWorkspace>) -> Self {
        self.workspace = Some(ws);
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.alg
    }

    /// Runs on a **connected** graph (the paper's setting). Fails with
    /// [`BccError::Disconnected`] otherwise; use
    /// [`run_any`](BccConfig::run_any) for general graphs.
    pub fn run(&self, pool: &Pool, g: &Graph) -> Result<BccRun, BccError> {
        let start = Instant::now();
        let ws = self.resolve_workspace();
        let mut rec = PhaseRecorder::with_workspace(self.sink(pool), Some(Arc::clone(&ws)));
        let result = run_connected(pool, g, self.alg, self.ranker, self.tuning, &ws, &mut rec)?;
        Ok(self.package(pool, g, rec, result, start))
    }

    /// Runs on an arbitrary (possibly disconnected) graph: connected
    /// components first, then the configured algorithm per component,
    /// with labels stitched canonically over the whole edge list.
    pub fn run_any(&self, pool: &Pool, g: &Graph) -> Result<BccRun, BccError> {
        let start = Instant::now();
        let ws = self.resolve_workspace();
        let mut rec = PhaseRecorder::with_workspace(self.sink(pool), Some(Arc::clone(&ws)));
        let result = crate::per_component::run_per_component(
            pool,
            g,
            self.alg,
            self.ranker,
            self.tuning,
            &ws,
            &mut rec,
        )?;
        Ok(self.package(pool, g, rec, result, start))
    }

    fn resolve_workspace(&self) -> Arc<BccWorkspace> {
        self.workspace
            .clone()
            .unwrap_or_else(|| Arc::new(BccWorkspace::new()))
    }

    fn sink<'a>(&'a self, pool: &'a Pool) -> Option<&'a Telemetry> {
        self.telemetry
            .as_deref()
            .or_else(|| pool.telemetry().map(Arc::as_ref))
    }

    fn package(
        &self,
        pool: &Pool,
        g: &Graph,
        rec: PhaseRecorder,
        result: BccResult,
        start: Instant,
    ) -> BccRun {
        let report = rec.finish(
            self.alg.name(),
            pool.threads(),
            g.n(),
            g.m(),
            result.stats.clone(),
            start.elapsed(),
        );
        BccRun { result, report }
    }
}

/// Output of one [`BccConfig`] run: the labels and the breakdown.
#[derive(Clone, Debug)]
pub struct BccRun {
    /// Component labels and flat counters (the classic result type).
    pub result: BccResult,
    /// Structured per-step breakdown with synchronization stats.
    pub report: PhaseReport,
}

/// Dispatches one connected-graph pipeline into `rec`. Shared by
/// [`BccConfig::run`] and the per-component driver.
pub(crate) fn run_connected(
    pool: &Pool,
    g: &Graph,
    alg: Algorithm,
    ranker: Ranker,
    tuning: TraversalTuning,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> Result<BccResult, BccError> {
    match alg {
        Algorithm::Sequential => Ok(sequential_impl(g)),
        Algorithm::TvSmp => tv_smp_impl(pool, g, ranker, tuning, ws, rec),
        Algorithm::TvOpt => tv_opt_impl(pool, g, tuning, ws, rec),
        Algorithm::TvFilter => tv_filter_impl(pool, g, tuning, ws, rec),
        Algorithm::FastBcc => crate::fast_bcc::fast_bcc_impl(pool, g, tuning, ws, rec),
    }
}

pub(crate) fn sequential_impl(g: &Graph) -> BccResult {
    let start = Instant::now();
    let mut comp = tarjan_bcc(g);
    let num_components = canonicalize_edge_labels(&mut comp);
    let phases = PhaseTimes {
        total: start.elapsed(),
        ..PhaseTimes::default()
    };
    let stats = PipelineStats {
        input_edges: g.m(),
        effective_edges: g.m(),
        ..PipelineStats::default()
    };
    BccResult {
        edge_comp: comp,
        num_components,
        phases,
        stats,
    }
}

fn tv_smp_impl(
    pool: &Pool,
    g: &Graph,
    ranker: Ranker,
    tuning: TraversalTuning,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    if let Some(r) = trivial_result(g, start, rec.phases()) {
        return Ok(r);
    }

    // Step 1: Spanning-tree (Shiloach–Vishkin on the edge list).
    let sv = rec.step(Step::SpanningTree, || {
        connected_components_with_ws(pool, n, g.edges(), tuning.sv, ws)
    });
    if sv.num_components != 1 {
        sv.recycle(ws);
        return Err(BccError::Disconnected);
    }
    let mut is_tree = ws.take_filled(g.m(), false);
    for &i in &sv.tree_edges {
        is_tree[i as usize] = true;
    }
    let mut tree_edges: Vec<Edge> = ws.take(n as usize);
    tree_edges.extend(sv.tree_edges.iter().map(|&i| g.edges()[i as usize]));
    let sv_rounds = sv.rounds;
    sv.recycle(ws);

    // Step 2: Euler-tour (circular adjacency by sorting + cross
    // pointers + list ranking).
    let root = 0u32;
    let tour = rec.step(Step::EulerTour, || {
        euler_tour_classic_ws(pool, n, tree_edges, root, ranker, ws)
    });

    // Step 3: Root-tree / tree computations.
    let info = rec.step(Step::RootTree, || {
        tree_computations_ws(pool, &tour, root, ws)
    });

    // Steps 4–6.
    let tail = tv_tail(
        pool,
        n,
        g.edges(),
        &is_tree,
        &info,
        tuning,
        LowHighMethod::Auto,
        ws,
        rec,
    );
    tour.recycle(ws);
    info.recycle(ws);
    ws.give(is_tree);
    ws.give(tail.aux_vertex_labels);
    let stats = PipelineStats {
        input_edges: g.m(),
        effective_edges: g.m(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_spanning: sv_rounds,
        sv_rounds_cc: tail.sv_rounds_cc,
        ..PipelineStats::default()
    };
    Ok(finalize(
        tail.edge_labels,
        rec.phases().clone(),
        stats,
        start,
    ))
}

fn tv_opt_impl(
    pool: &Pool,
    g: &Graph,
    tuning: TraversalTuning,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    if let Some(r) = trivial_result(g, start, rec.phases()) {
        return Ok(r);
    }

    // Step 1 (merged with rooting): adjacency conversion + traversal.
    // CSR and the work-stealing traversal manage their own storage
    // (per-thread deques, atomics) and are not arena-threaded.
    let root = 0u32;
    let st = rec.step(Step::SpanningTree, || {
        let csr = Csr::build_par(pool, g);
        work_stealing_tree(pool, &csr, root)
    });
    if st.reached != n {
        return Err(BccError::Disconnected);
    }
    let mut is_tree = ws.take_filled(g.m(), false);
    let mut tree_edges: Vec<Edge> = ws.take(n as usize);
    for v in 0..n {
        let eid = st.parent_eid[v as usize];
        if eid != NIL {
            is_tree[eid as usize] = true;
            tree_edges.push(g.edges()[eid as usize]);
        }
    }

    // Step 2: cache-friendly DFS-order Euler tour.
    let tour = rec.step(Step::EulerTour, || {
        dfs_euler_tour_ws(pool, n, tree_edges, &st.parent, root, ws)
    });

    // Step 3: tree computations by prefix sums over the tour.
    let info = rec.step(Step::RootTree, || {
        tree_computations_ws(pool, &tour, root, ws)
    });

    let tail = tv_tail(
        pool,
        n,
        g.edges(),
        &is_tree,
        &info,
        tuning,
        LowHighMethod::Auto,
        ws,
        rec,
    );
    tour.recycle(ws);
    info.recycle(ws);
    ws.give(is_tree);
    ws.give(tail.aux_vertex_labels);
    let stats = PipelineStats {
        input_edges: g.m(),
        effective_edges: g.m(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_cc: tail.sv_rounds_cc,
        ..PipelineStats::default()
    };
    Ok(finalize(
        tail.edge_labels,
        rec.phases().clone(),
        stats,
        start,
    ))
}

fn tv_filter_impl(
    pool: &Pool,
    g: &Graph,
    tuning: TraversalTuning,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    let m = g.m();
    if let Some(r) = trivial_result(g, start, rec.phases()) {
        return Ok(r);
    }

    // Adjacency conversion is input preparation shared by every BFS
    // strategy: keep it out of the Spanning-tree step so the ablation
    // columns compare traversals, not CSR construction (it still counts
    // toward `total`).
    let csr = Csr::build_par(pool, g);

    // Step 1: BFS spanning tree T (Lemma 1 requires a BFS tree).
    let root = 0u32;
    let mut bfs = rec.step(Step::SpanningTree, || {
        bfs_tree_ws(pool, &csr, root, &tuning, ws)
    });
    if bfs.reached != n {
        bfs.recycle(ws);
        return Err(BccError::Disconnected);
    }

    // Step 2 (Filtering): spanning forest F of G − T, then assemble the
    // reduced graph T ∪ F (≤ 2(n−1) edges).
    let (reduced_edges, reduced_is_tree, reduced_of_orig, forest_rounds) =
        rec.step(Step::Filtering, || {
            // Nontree candidates with their original ids. The tree test
            // is on the parent *pair*, not the edge id: a duplicate of a
            // tree edge connects its endpoints in G − T without adding
            // any connectivity beyond T, so letting it into F can
            // displace a real forest edge and break the certificate
            // (Lemma 1 assumes a simple graph). Tree-parallel edges are
            // placed by the condition-1 rule below, which gives each
            // exactly its tree twin's label.
            let parent: &[u32] = &bfs.parent;
            let mut cand_edges: Vec<Edge> = ws.take(m);
            let mut cand_orig: Vec<u32> = ws.take(m);
            for (i, &e) in g.edges().iter().enumerate() {
                if parent[e.u as usize] != e.v && parent[e.v as usize] != e.u {
                    cand_edges.push(e);
                    cand_orig.push(i as u32);
                }
            }
            let forest = connected_components_with_ws(pool, n, &cand_edges, tuning.sv, ws);

            // Reduced edge list: T first, then F.
            let mut reduced_edges: Vec<Edge> = ws.take(2 * n as usize);
            let mut reduced_is_tree: Vec<bool> = ws.take(2 * n as usize);
            let mut reduced_of_orig = ws.take_filled(m, NIL);
            for v in 0..n {
                let eid = bfs.parent_eid[v as usize];
                if eid != NIL {
                    reduced_of_orig[eid as usize] = reduced_edges.len() as u32;
                    reduced_edges.push(g.edges()[eid as usize]);
                    reduced_is_tree.push(true);
                }
            }
            for &ci in &forest.tree_edges {
                let orig = cand_orig[ci as usize];
                reduced_of_orig[orig as usize] = reduced_edges.len() as u32;
                reduced_edges.push(g.edges()[orig as usize]);
                reduced_is_tree.push(false);
            }
            let forest_rounds = forest.rounds;
            forest.recycle(ws);
            ws.give(cand_edges);
            ws.give(cand_orig);
            (
                reduced_edges,
                reduced_is_tree,
                reduced_of_orig,
                forest_rounds,
            )
        });

    // Steps 2'–3': Euler tour + tree computations on T.
    let mut tree_edges: Vec<Edge> = ws.take(n as usize);
    tree_edges.extend_from_slice(&reduced_edges[..n as usize - 1]);
    let tour = rec.step(Step::EulerTour, || {
        dfs_euler_tour_ws(pool, n, tree_edges, &bfs.parent, root, ws)
    });
    let info = rec.step(Step::RootTree, || {
        tree_computations_ws(pool, &tour, root, ws)
    });

    // Steps 4–6 on the reduced graph.
    let tail = tv_tail(
        pool,
        n,
        &reduced_edges,
        &reduced_is_tree,
        &info,
        tuning,
        LowHighMethod::Auto,
        ws,
        rec,
    );

    // Step 4 of Alg. 2: place each filtered edge (u, v) into the
    // component of the tree edge (x, p(x)) of its larger-preorder
    // endpoint x (condition 1 holds for any rooted spanning tree).
    // `comp` escapes as the result's `edge_comp`, so it is allocated
    // plain rather than from the workspace.
    let mut comp = vec![0u32; m];
    rec.step(Step::Filtering, || {
        let comp_s = SharedSlice::new(&mut comp);
        let labels: &[u32] = &tail.edge_labels;
        let aux: &[u32] = &tail.aux_vertex_labels;
        let map: &[u32] = &reduced_of_orig;
        let pre = &info.preorder;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                let r = map[i];
                let label = if r != NIL {
                    labels[r as usize]
                } else {
                    let e = g.edges()[i];
                    let x = if pre[e.u as usize] > pre[e.v as usize] {
                        e.u
                    } else {
                        e.v
                    };
                    aux[x as usize]
                };
                unsafe { comp_s.write(i, label) };
            }
        });
    });

    let stats = PipelineStats {
        input_edges: m,
        effective_edges: reduced_edges.len(),
        filtered_edges: m - reduced_edges.len(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_spanning: forest_rounds,
        sv_rounds_cc: tail.sv_rounds_cc,
        bfs_levels: bfs.levels,
        bfs_bottom_up_levels: bfs.bottom_up_levels(),
        bfs_directions: bfs
            .directions
            .iter()
            .map(|d| match d {
                BfsDirection::TopDown => 'T',
                BfsDirection::BottomUp => 'B',
            })
            .collect(),
        bfs_frontier_sizes: std::mem::take(&mut bfs.frontier_sizes),
    };
    tour.recycle(ws);
    info.recycle(ws);
    bfs.recycle(ws);
    ws.give(reduced_edges);
    ws.give(reduced_is_tree);
    ws.give(reduced_of_orig);
    // `tail.edge_labels` is a plain allocation (it is the *result* for
    // TV-SMP/TV-opt); dropping it here keeps the shelf from growing by
    // one foreign buffer per run.
    drop(tail.edge_labels);
    ws.give(tail.aux_vertex_labels);
    Ok(finalize(comp, rec.phases().clone(), stats, start))
}

/// Output of the shared tail: raw (non-canonical) labels.
pub(crate) struct TailOutput {
    /// Label per input edge.
    pub(crate) edge_labels: Vec<u32>,
    /// Label per auxiliary vertex; `aux_vertex_labels[v]` for `v < n` is
    /// the component of tree edge `(v, p(v))` (TV-filter uses this to
    /// place filtered edges).
    pub(crate) aux_vertex_labels: Vec<u32>,
    /// Auxiliary-graph vertex count (n + nontree edges considered).
    pub(crate) aux_vertices: u32,
    /// Auxiliary-graph edge count (|R'_c|).
    pub(crate) aux_edges: usize,
    /// SV rounds of the step-6 connectivity run.
    pub(crate) sv_rounds_cc: u32,
}

/// Steps 4–6: Low-high (fused min/max sweep), Label-edge (fused
/// count→scan→emit realization of Alg. 1), Connected-components.
///
/// `lh_method` selects the low/high kernel: the TV pipelines pass
/// [`LowHighMethod::Auto`]; FAST-BCC forces the O(n)-space
/// [`LowHighMethod::LevelSweep`] to keep its space bound.
///
/// All scratch is drawn from `ws`; only `edge_labels` (which becomes
/// the result for TV-SMP/TV-opt) and `aux_vertex_labels` (returned for
/// TV-filter's placement pass) survive — callers give them back once
/// done.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tv_tail(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    tuning: TraversalTuning,
    lh_method: LowHighMethod,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> TailOutput {
    let m = edges.len();

    // Step 4: Low-high.
    let lh = rec.step(Step::LowHigh, || {
        compute_low_high_with_ws(pool, edges, is_tree_edge, info, lh_method, ws)
    });

    // Step 5: Label-edge.
    let aux = rec.step(Step::LabelEdge, || {
        build_aux_graph_fused_ws(pool, n, edges, is_tree_edge, info, &lh, ws)
    });
    lh.recycle(ws);

    // Step 6: Connected-components of the auxiliary graph, written back
    // to the input edges.
    let aux_vertices = aux.num_vertices;
    let aux_edges = aux.edges.len();
    let out = rec.step(Step::ConnectedComponents, || {
        let cc = connected_components_with_ws(pool, aux.num_vertices, &aux.edges, tuning.sv, ws);
        let mut edge_labels = vec![0u32; m];
        {
            let out = SharedSlice::new(&mut edge_labels);
            let labels: &[u32] = &cc.label;
            let ni: &[u32] = &aux.nontree_index;
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    let e = edges[i];
                    let label = if is_tree_edge[i] {
                        // Aux vertex of a tree edge is its child endpoint.
                        let c = if info.parent[e.v as usize] == e.u {
                            e.v
                        } else {
                            e.u
                        };
                        labels[c as usize]
                    } else {
                        labels[(n + ni[i]) as usize]
                    };
                    unsafe { out.write(i, label) };
                }
            });
        }
        ws.give(cc.tree_edges);
        TailOutput {
            edge_labels,
            aux_vertex_labels: cc.label,
            aux_vertices,
            aux_edges,
            sv_rounds_cc: cc.rounds,
        }
    });
    aux.recycle(ws);
    out
}

/// Canonicalizes labels and stamps the total time.
pub(crate) fn finalize(
    mut comp: Vec<u32>,
    mut phases: PhaseTimes,
    stats: PipelineStats,
    start: Instant,
) -> BccResult {
    let num_components = canonicalize_edge_labels(&mut comp);
    phases.total = start.elapsed();
    BccResult {
        edge_comp: comp,
        num_components,
        phases,
        stats,
    }
}

/// Graphs with no edges need no pipeline.
pub(crate) fn trivial_result(g: &Graph, start: Instant, phases: &PhaseTimes) -> Option<BccResult> {
    if g.m() == 0 {
        let mut phases = phases.clone();
        phases.total = start.elapsed();
        Some(BccResult {
            edge_comp: vec![],
            num_components: 0,
            phases,
            stats: PipelineStats::default(),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;
    use bcc_graph::GraphBuilder;

    fn all_agree(g: &Graph, p: usize) {
        let pool = Pool::new(p);
        let base = sequential_impl(g);
        for alg in [
            Algorithm::TvSmp,
            Algorithm::TvOpt,
            Algorithm::TvFilter,
            Algorithm::FastBcc,
        ] {
            let r = BccConfig::new(alg)
                .run(&pool, g)
                .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()))
                .result;
            assert_eq!(
                r.num_components,
                base.num_components,
                "{} count (p={p})",
                alg.name()
            );
            assert_eq!(r.edge_comp, base.edge_comp, "{} labels (p={p})", alg.name());
        }
    }

    #[test]
    fn structured_families() {
        for p in [1, 2, 4] {
            all_agree(&gen::cycle(10), p);
            all_agree(&gen::path(10), p);
            all_agree(&gen::star(10), p);
            all_agree(&gen::complete(7), p);
            all_agree(&gen::torus(3, 5), p);
            all_agree(&gen::two_cliques_sharing_vertex(4), p);
            all_agree(&gen::cycle_chain(4, 5, 0), p);
            all_agree(&gen::random_tree(60, p as u64), p);
        }
    }

    #[test]
    fn random_sparse_graphs() {
        for seed in 0..8u64 {
            let g = gen::random_connected(200, 420, seed);
            all_agree(&g, 1);
            all_agree(&g, 4);
        }
    }

    #[test]
    fn random_denser_graphs() {
        for seed in 0..4u64 {
            let g = gen::random_connected(120, 1500, seed);
            all_agree(&g, 3);
        }
    }

    #[test]
    fn dense_instances() {
        let g = gen::dense_percent(60, 0.7, 1);
        // dense_percent may be disconnected in principle; this instance
        // is far above the connectivity threshold.
        assert!(bcc_graph::validate::is_connected(&g));
        all_agree(&g, 2);
    }

    #[test]
    fn two_vertices_one_edge() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
        all_agree(&g, 2);
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.num_components, 1);
    }

    #[test]
    fn no_edges_trivial() {
        let pool = Pool::new(2);
        let g = GraphBuilder::new(1).build().unwrap();
        for alg in Algorithm::ALL {
            let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
            assert_eq!(r.num_components, 0);
            assert!(r.edge_comp.is_empty());
        }
    }

    #[test]
    fn disconnected_rejected_by_parallel_algorithms() {
        let pool = Pool::new(2);
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        for alg in [
            Algorithm::TvSmp,
            Algorithm::TvOpt,
            Algorithm::TvFilter,
            Algorithm::FastBcc,
        ] {
            assert_eq!(
                BccConfig::new(alg).run(&pool, &g).unwrap_err(),
                BccError::Disconnected,
                "{}",
                alg.name()
            );
        }
        // Sequential handles it.
        let r = BccConfig::new(Algorithm::Sequential)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.num_components, 2);
    }

    #[test]
    fn derived_outputs() {
        let g = gen::cycle_chain(3, 4, 0); // 3 cycles + 2 bridges
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.num_components, 5);
        assert_eq!(r.bridges(&g).len(), 2);
        // Cut vertices: both endpoints of each bridge.
        assert_eq!(r.articulation_points(&g).len(), 4);
    }

    #[test]
    fn stats_capture_the_filter_invariant() {
        let n = 500u32;
        let g = gen::random_connected(n, 5_000, 4);
        let pool = Pool::new(2);
        let f = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(f.stats.input_edges, 5_000);
        assert!(f.stats.effective_edges <= 2 * (n as usize - 1));
        assert_eq!(
            f.stats.filtered_edges,
            f.stats.input_edges - f.stats.effective_edges
        );
        assert!(f.stats.filtered_edges >= 5_000 - 2 * (n as usize - 1));
        assert!(f.stats.bfs_levels >= 2);
        // Aux graph of the reduced set is tiny relative to TV-opt's.
        let o = BccConfig::new(Algorithm::TvOpt)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(o.stats.effective_edges, 5_000);
        assert!(f.stats.aux_vertices < o.stats.aux_vertices);
        assert!(f.stats.aux_edges < o.stats.aux_edges);
        assert!(o.stats.sv_rounds_cc >= 1);
    }

    #[test]
    fn phases_are_populated() {
        let g = gen::random_connected(300, 900, 2);
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert!(r.phases.total >= r.phases.step_sum() / 2);
        assert!(r.phases.filtering.as_nanos() > 0);
        let r = BccConfig::new(Algorithm::TvOpt)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.phases.filtering.as_nanos(), 0);
    }

    #[test]
    fn report_step_sum_is_bounded_by_total() {
        let g = gen::random_connected(400, 1_200, 7);
        for p in [1, 2] {
            let pool = Pool::new(p);
            for alg in Algorithm::ALL {
                let run = BccConfig::new(alg).run(&pool, &g).unwrap();
                assert!(
                    run.report.step_sum() <= run.report.total,
                    "{} p={p}: step_sum {:?} > total {:?}",
                    alg.name(),
                    run.report.step_sum(),
                    run.report.total
                );
            }
        }
    }

    #[test]
    fn report_carries_sizes_and_steps() {
        let g = gen::random_connected(300, 2_000, 5);
        let pool = Pool::new(2);
        let run = BccConfig::new(Algorithm::TvFilter).run(&pool, &g).unwrap();
        let rep = &run.report;
        assert_eq!(rep.algorithm, "TV-filter");
        assert_eq!(rep.threads, 2);
        assert_eq!(rep.n, 300);
        assert_eq!(rep.m, 2_000);
        assert_eq!(rep.effective_edges, run.result.stats.effective_edges);
        assert_eq!(rep.filtered_edges, run.result.stats.filtered_edges);
        assert!(rep.effective_edges <= 2 * 299);
        assert!(rep.step(crate::phase::Step::Filtering).is_some());
        assert!(rep.step(crate::phase::Step::LowHigh).is_some());
        // Per-step durations agree with the flat PhaseTimes.
        assert_eq!(
            rep.step(crate::phase::Step::LowHigh).unwrap().duration,
            run.result.phases.low_high
        );
        // Without telemetry the synchronization stats are inert.
        assert_eq!(rep.phase_runs, 0);
        assert_eq!(rep.imbalance, 1.0);
    }

    #[test]
    fn telemetry_pool_fills_synchronization_stats() {
        let g = gen::random_connected(300, 900, 3);
        let sink = Arc::new(Telemetry::new(2));
        let pool = Pool::builder()
            .threads(2)
            .telemetry(Arc::clone(&sink))
            .build();
        let run = BccConfig::new(Algorithm::TvOpt).run(&pool, &g).unwrap();
        assert!(run.report.phase_runs > 0, "pool phases must be counted");
        assert!(run.report.barrier_episodes >= run.report.phase_runs);
        assert!(run.report.imbalance >= 1.0);
        // The same sink passed explicitly reads identically.
        let run2 = BccConfig::new(Algorithm::TvOpt)
            .telemetry(Arc::clone(&sink))
            .run(&pool, &g)
            .unwrap();
        assert!(run2.report.phase_runs > 0);
    }

    #[test]
    fn former_free_function_surface_is_covered_by_the_builder() {
        // The deprecated free functions (biconnected_components,
        // sequential, tv_smp, tv_smp_with_ranker, tv_opt, tv_filter)
        // are gone; this pins their ported call patterns.
        let g = gen::torus(4, 5);
        let pool = Pool::new(2);
        let base = BccConfig::new(Algorithm::Sequential)
            .run(&pool, &g)
            .unwrap()
            .result;
        for run in [
            BccConfig::new(Algorithm::TvFilter).run(&pool, &g),
            BccConfig::new(Algorithm::TvSmp).run(&pool, &g),
            BccConfig::new(Algorithm::TvOpt).run(&pool, &g),
            BccConfig::new(Algorithm::TvSmp)
                .ranker(Ranker::Sequential)
                .run(&pool, &g),
        ] {
            assert_eq!(run.unwrap().result.edge_comp, base.edge_comp);
        }
    }
}

//! The four biconnected-components algorithms of the paper's study:
//! `Sequential`, `TV-SMP`, `TV-opt`, and `TV-filter`.
//!
//! All three parallel pipelines share steps 4–6 (Low-high, Label-edge,
//! Connected-components — [`tv_tail`]); they differ in how the rooted
//! spanning tree and its Euler tour are produced, and TV-filter shrinks
//! the edge set first. Each phase is timed into [`PhaseTimes`] to
//! regenerate the paper's Fig. 4 breakdown.

use crate::aux_graph::build_aux_graph;
use crate::low_high::{compute_low_high_with, LowHighMethod};
use crate::phase::{timed, PhaseTimes, PipelineStats};
use crate::tarjan::tarjan_bcc;
use crate::verify::canonicalize_edge_labels;
use bcc_connectivity::bfs::bfs_tree_par;
use bcc_connectivity::sv::connected_components;
use bcc_connectivity::traversal::work_stealing_tree;
use bcc_euler::{dfs_euler_tour, euler_tour_classic, tree_computations, Ranker, TreeInfo};
use bcc_graph::{Csr, Edge, Graph};
use bcc_smp::{Pool, SharedSlice, NIL};
use std::time::Instant;

/// Algorithm selector for [`biconnected_components`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Tarjan's linear-time DFS (the paper's sequential baseline).
    Sequential,
    /// Direct SMP emulation of Tarjan–Vishkin (paper §3.1).
    TvSmp,
    /// Algorithm-engineered TV (paper §3.2).
    TvOpt,
    /// TV with non-essential-edge filtering (paper §4, Alg. 2).
    TvFilter,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Sequential,
        Algorithm::TvSmp,
        Algorithm::TvOpt,
        Algorithm::TvFilter,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sequential => "Sequential",
            Algorithm::TvSmp => "TV-SMP",
            Algorithm::TvOpt => "TV-opt",
            Algorithm::TvFilter => "TV-filter",
        }
    }
}

/// Why a computation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BccError {
    /// The parallel TV pipelines require a connected input graph; use
    /// [`crate::per_component::biconnected_components_per_component`]
    /// for general graphs.
    Disconnected,
}

impl std::fmt::Display for BccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BccError::Disconnected => {
                write!(f, "input graph is not connected (TV requires connectivity)")
            }
        }
    }
}

impl std::error::Error for BccError {}

/// Per-edge biconnected components of a connected graph.
#[derive(Clone, Debug)]
pub struct BccResult {
    /// Canonical component label per edge (`0..num_components`, numbered
    /// by first appearance in the edge list) — identical across
    /// algorithms and thread counts.
    pub edge_comp: Vec<u32>,
    /// Number of biconnected components.
    pub num_components: u32,
    /// Wall-clock breakdown by pipeline step.
    pub phases: PhaseTimes,
    /// Machine-independent work counters.
    pub stats: PipelineStats,
}

impl BccResult {
    /// Articulation (cut) vertices, ascending.
    pub fn articulation_points(&self, g: &Graph) -> Vec<u32> {
        crate::verify::articulation_points(g, &self.edge_comp)
    }

    /// Bridge edges (edge indices), ascending.
    pub fn bridges(&self, g: &Graph) -> Vec<u32> {
        crate::verify::bridges(g, &self.edge_comp)
    }
}

/// Runs the selected algorithm on a connected graph.
pub fn biconnected_components(
    pool: &Pool,
    g: &Graph,
    alg: Algorithm,
) -> Result<BccResult, BccError> {
    match alg {
        Algorithm::Sequential => Ok(sequential(g)),
        Algorithm::TvSmp => tv_smp(pool, g),
        Algorithm::TvOpt => tv_opt(pool, g),
        Algorithm::TvFilter => tv_filter(pool, g),
    }
}

/// The sequential baseline (handles disconnected inputs too).
pub fn sequential(g: &Graph) -> BccResult {
    let start = Instant::now();
    let mut comp = tarjan_bcc(g);
    let num_components = canonicalize_edge_labels(&mut comp);
    let phases = PhaseTimes {
        total: start.elapsed(),
        ..PhaseTimes::default()
    };
    let stats = PipelineStats {
        input_edges: g.m(),
        effective_edges: g.m(),
        ..PipelineStats::default()
    };
    BccResult {
        edge_comp: comp,
        num_components,
        phases,
        stats,
    }
}

/// TV-SMP: SV spanning tree → classic Euler tour (sort + list ranking)
/// → tree computations → shared tail.
pub fn tv_smp(pool: &Pool, g: &Graph) -> Result<BccResult, BccError> {
    tv_smp_with_ranker(pool, g, Ranker::HelmanJaja)
}

/// [`tv_smp`] with an explicit list-ranking algorithm (ablation hook).
pub fn tv_smp_with_ranker(pool: &Pool, g: &Graph, ranker: Ranker) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    let mut phases = PhaseTimes::default();
    if let Some(r) = trivial_result(g, start, &phases) {
        return Ok(r);
    }

    // Step 1: Spanning-tree (Shiloach–Vishkin on the edge list).
    let sv = timed(&mut phases.spanning_tree, || {
        connected_components(pool, n, g.edges())
    });
    if sv.num_components != 1 {
        return Err(BccError::Disconnected);
    }
    let mut is_tree = vec![false; g.m()];
    for &i in &sv.tree_edges {
        is_tree[i as usize] = true;
    }
    let tree_edges: Vec<Edge> = sv
        .tree_edges
        .iter()
        .map(|&i| g.edges()[i as usize])
        .collect();

    // Step 2: Euler-tour (circular adjacency by sorting + cross
    // pointers + list ranking).
    let root = 0u32;
    let tour = timed(&mut phases.euler_tour, || {
        euler_tour_classic(pool, n, tree_edges, root, ranker)
    });

    // Step 3: Root-tree / tree computations.
    let info = timed(&mut phases.root_tree, || {
        tree_computations(pool, &tour, root)
    });

    // Steps 4–6.
    let tail = tv_tail(pool, n, g.edges(), &is_tree, &info, &mut phases);
    let stats = PipelineStats {
        input_edges: g.m(),
        effective_edges: g.m(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_spanning: sv.rounds,
        sv_rounds_cc: tail.sv_rounds_cc,
        ..PipelineStats::default()
    };
    Ok(finalize(tail.edge_labels, phases, stats, start))
}

/// TV-opt: work-stealing rooted spanning tree (merged Spanning-tree +
/// Root-tree) → DFS-order Euler tour → prefix-sum tree computations →
/// shared tail.
pub fn tv_opt(pool: &Pool, g: &Graph) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    let mut phases = PhaseTimes::default();
    if let Some(r) = trivial_result(g, start, &phases) {
        return Ok(r);
    }

    // Step 1 (merged with rooting): adjacency conversion + traversal.
    let root = 0u32;
    let st = timed(&mut phases.spanning_tree, || {
        let csr = Csr::build_par(pool, g);
        work_stealing_tree(pool, &csr, root)
    });
    if st.reached != n {
        return Err(BccError::Disconnected);
    }
    let mut is_tree = vec![false; g.m()];
    let mut tree_edges = Vec::with_capacity(n as usize - 1);
    for v in 0..n {
        let eid = st.parent_eid[v as usize];
        if eid != NIL {
            is_tree[eid as usize] = true;
            tree_edges.push(g.edges()[eid as usize]);
        }
    }

    // Step 2: cache-friendly DFS-order Euler tour.
    let tour = timed(&mut phases.euler_tour, || {
        dfs_euler_tour(pool, n, tree_edges, &st.parent, root)
    });

    // Step 3: tree computations by prefix sums over the tour.
    let info = timed(&mut phases.root_tree, || {
        tree_computations(pool, &tour, root)
    });

    let tail = tv_tail(pool, n, g.edges(), &is_tree, &info, &mut phases);
    let stats = PipelineStats {
        input_edges: g.m(),
        effective_edges: g.m(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_cc: tail.sv_rounds_cc,
        ..PipelineStats::default()
    };
    Ok(finalize(tail.edge_labels, phases, stats, start))
}

/// TV-filter (paper Alg. 2): BFS tree `T`, spanning forest `F` of
/// `G − T`, TV(-opt) on `T ∪ F`, then condition-1 placement of the
/// filtered edges.
pub fn tv_filter(pool: &Pool, g: &Graph) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    let m = g.m();
    let mut phases = PhaseTimes::default();
    if let Some(r) = trivial_result(g, start, &phases) {
        return Ok(r);
    }

    // Step 1: BFS spanning tree T (Lemma 1 requires a BFS tree).
    let root = 0u32;
    let bfs = timed(&mut phases.spanning_tree, || {
        let csr = Csr::build_par(pool, g);
        bfs_tree_par(pool, &csr, root)
    });
    if bfs.reached != n {
        return Err(BccError::Disconnected);
    }

    // Step 2 (Filtering): spanning forest F of G − T, then assemble the
    // reduced graph T ∪ F (≤ 2(n−1) edges).
    let (reduced_edges, reduced_is_tree, reduced_of_orig) = timed(&mut phases.filtering, || {
        let mut in_tree = vec![false; m];
        for v in 0..n {
            let eid = bfs.parent_eid[v as usize];
            if eid != NIL {
                in_tree[eid as usize] = true;
            }
        }
        // Nontree candidates with their original ids.
        let mut cand_edges: Vec<Edge> = Vec::with_capacity(m - (n as usize - 1));
        let mut cand_orig: Vec<u32> = Vec::with_capacity(cand_edges.capacity());
        for (i, &e) in g.edges().iter().enumerate() {
            if !in_tree[i] {
                cand_edges.push(e);
                cand_orig.push(i as u32);
            }
        }
        let forest = connected_components(pool, n, &cand_edges);

        // Reduced edge list: T first, then F.
        let mut reduced_edges: Vec<Edge> = Vec::with_capacity(2 * n as usize);
        let mut reduced_is_tree: Vec<bool> = Vec::with_capacity(2 * n as usize);
        let mut reduced_of_orig = vec![NIL; m];
        for v in 0..n {
            let eid = bfs.parent_eid[v as usize];
            if eid != NIL {
                reduced_of_orig[eid as usize] = reduced_edges.len() as u32;
                reduced_edges.push(g.edges()[eid as usize]);
                reduced_is_tree.push(true);
            }
        }
        for &ci in &forest.tree_edges {
            let orig = cand_orig[ci as usize];
            reduced_of_orig[orig as usize] = reduced_edges.len() as u32;
            reduced_edges.push(g.edges()[orig as usize]);
            reduced_is_tree.push(false);
        }
        (reduced_edges, reduced_is_tree, reduced_of_orig)
    });

    // Steps 2'–3': Euler tour + tree computations on T.
    let tree_edges: Vec<Edge> = reduced_edges[..n as usize - 1].to_vec();
    let tour = timed(&mut phases.euler_tour, || {
        dfs_euler_tour(pool, n, tree_edges, &bfs.parent, root)
    });
    let info = timed(&mut phases.root_tree, || {
        tree_computations(pool, &tour, root)
    });

    // Steps 4–6 on the reduced graph.
    let tail = tv_tail(
        pool,
        n,
        &reduced_edges,
        &reduced_is_tree,
        &info,
        &mut phases,
    );

    // Step 4 of Alg. 2: place each filtered edge (u, v) into the
    // component of the tree edge (x, p(x)) of its larger-preorder
    // endpoint x (condition 1 holds for any rooted spanning tree).
    let mut comp = vec![0u32; m];
    timed(&mut phases.filtering, || {
        let comp_s = SharedSlice::new(&mut comp);
        let labels: &[u32] = &tail.edge_labels;
        let aux: &[u32] = &tail.aux_vertex_labels;
        let map: &[u32] = &reduced_of_orig;
        let pre = &info.preorder;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                let r = map[i];
                let label = if r != NIL {
                    labels[r as usize]
                } else {
                    let e = g.edges()[i];
                    let x = if pre[e.u as usize] > pre[e.v as usize] {
                        e.u
                    } else {
                        e.v
                    };
                    aux[x as usize]
                };
                unsafe { comp_s.write(i, label) };
            }
        });
    });

    let stats = PipelineStats {
        input_edges: m,
        effective_edges: reduced_edges.len(),
        filtered_edges: m - reduced_edges.len(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_cc: tail.sv_rounds_cc,
        bfs_levels: bfs.levels,
        ..PipelineStats::default()
    };
    Ok(finalize(comp, phases, stats, start))
}

/// Output of the shared tail: raw (non-canonical) labels.
struct TailOutput {
    /// Label per input edge.
    edge_labels: Vec<u32>,
    /// Label per auxiliary vertex; `aux_vertex_labels[v]` for `v < n` is
    /// the component of tree edge `(v, p(v))` (TV-filter uses this to
    /// place filtered edges).
    aux_vertex_labels: Vec<u32>,
    /// Auxiliary-graph vertex count (n + nontree edges considered).
    aux_vertices: u32,
    /// Auxiliary-graph edge count (|R'_c|).
    aux_edges: usize,
    /// SV rounds of the step-6 connectivity run.
    sv_rounds_cc: u32,
}

/// Steps 4–6: Low-high, Label-edge (Alg. 1), Connected-components.
fn tv_tail(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    phases: &mut PhaseTimes,
) -> TailOutput {
    let m = edges.len();

    // Step 4: Low-high.
    let lh = timed(&mut phases.low_high, || {
        compute_low_high_with(pool, edges, is_tree_edge, info, LowHighMethod::Auto)
    });

    // Step 5: Label-edge.
    let aux = timed(&mut phases.label_edge, || {
        build_aux_graph(pool, n, edges, is_tree_edge, info, &lh)
    });

    // Step 6: Connected-components of the auxiliary graph, written back
    // to the input edges.
    let aux_vertices = aux.num_vertices;
    let aux_edges = aux.edges.len();
    timed(&mut phases.connected_components, || {
        let cc = connected_components(pool, aux.num_vertices, &aux.edges);
        let mut edge_labels = vec![0u32; m];
        {
            let out = SharedSlice::new(&mut edge_labels);
            let labels: &[u32] = &cc.label;
            let ni: &[u32] = &aux.nontree_index;
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    let e = edges[i];
                    let label = if is_tree_edge[i] {
                        // Aux vertex of a tree edge is its child endpoint.
                        let c = if info.parent[e.v as usize] == e.u {
                            e.v
                        } else {
                            e.u
                        };
                        labels[c as usize]
                    } else {
                        labels[(n + ni[i]) as usize]
                    };
                    unsafe { out.write(i, label) };
                }
            });
        }
        TailOutput {
            edge_labels,
            aux_vertex_labels: cc.label,
            aux_vertices,
            aux_edges,
            sv_rounds_cc: cc.rounds,
        }
    })
}

/// Canonicalizes labels and stamps the total time.
fn finalize(
    mut comp: Vec<u32>,
    mut phases: PhaseTimes,
    stats: PipelineStats,
    start: Instant,
) -> BccResult {
    let num_components = canonicalize_edge_labels(&mut comp);
    phases.total = start.elapsed();
    BccResult {
        edge_comp: comp,
        num_components,
        phases,
        stats,
    }
}

/// Graphs with no edges need no pipeline.
fn trivial_result(g: &Graph, start: Instant, phases: &PhaseTimes) -> Option<BccResult> {
    if g.m() == 0 {
        let mut phases = phases.clone();
        phases.total = start.elapsed();
        Some(BccResult {
            edge_comp: vec![],
            num_components: 0,
            phases,
            stats: PipelineStats::default(),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;

    fn all_agree(g: &Graph, p: usize) {
        let pool = Pool::new(p);
        let base = sequential(g);
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            let r = biconnected_components(&pool, g, alg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
            assert_eq!(
                r.num_components,
                base.num_components,
                "{} count (p={p})",
                alg.name()
            );
            assert_eq!(r.edge_comp, base.edge_comp, "{} labels (p={p})", alg.name());
        }
    }

    #[test]
    fn structured_families() {
        for p in [1, 2, 4] {
            all_agree(&gen::cycle(10), p);
            all_agree(&gen::path(10), p);
            all_agree(&gen::star(10), p);
            all_agree(&gen::complete(7), p);
            all_agree(&gen::torus(3, 5), p);
            all_agree(&gen::two_cliques_sharing_vertex(4), p);
            all_agree(&gen::cycle_chain(4, 5, 0), p);
            all_agree(&gen::random_tree(60, p as u64), p);
        }
    }

    #[test]
    fn random_sparse_graphs() {
        for seed in 0..8u64 {
            let g = gen::random_connected(200, 420, seed);
            all_agree(&g, 1);
            all_agree(&g, 4);
        }
    }

    #[test]
    fn random_denser_graphs() {
        for seed in 0..4u64 {
            let g = gen::random_connected(120, 1500, seed);
            all_agree(&g, 3);
        }
    }

    #[test]
    fn dense_instances() {
        let g = gen::dense_percent(60, 0.7, 1);
        // dense_percent may be disconnected in principle; this instance
        // is far above the connectivity threshold.
        assert!(bcc_graph::validate::is_connected(&g));
        all_agree(&g, 2);
    }

    #[test]
    fn two_vertices_one_edge() {
        let g = Graph::from_tuples(2, [(0, 1)]);
        all_agree(&g, 2);
        let pool = Pool::new(2);
        let r = biconnected_components(&pool, &g, Algorithm::TvFilter).unwrap();
        assert_eq!(r.num_components, 1);
    }

    #[test]
    fn no_edges_trivial() {
        let pool = Pool::new(2);
        let g = Graph::new(1, vec![]);
        for alg in Algorithm::ALL {
            let r = biconnected_components(&pool, &g, alg).unwrap();
            assert_eq!(r.num_components, 0);
            assert!(r.edge_comp.is_empty());
        }
    }

    #[test]
    fn disconnected_rejected_by_parallel_algorithms() {
        let pool = Pool::new(2);
        let g = Graph::from_tuples(4, [(0, 1), (2, 3)]);
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            assert_eq!(
                biconnected_components(&pool, &g, alg).unwrap_err(),
                BccError::Disconnected,
                "{}",
                alg.name()
            );
        }
        // Sequential handles it.
        let r = biconnected_components(&pool, &g, Algorithm::Sequential).unwrap();
        assert_eq!(r.num_components, 2);
    }

    #[test]
    fn derived_outputs() {
        let g = gen::cycle_chain(3, 4, 0); // 3 cycles + 2 bridges
        let pool = Pool::new(2);
        let r = biconnected_components(&pool, &g, Algorithm::TvFilter).unwrap();
        assert_eq!(r.num_components, 5);
        assert_eq!(r.bridges(&g).len(), 2);
        // Cut vertices: both endpoints of each bridge.
        assert_eq!(r.articulation_points(&g).len(), 4);
    }

    #[test]
    fn stats_capture_the_filter_invariant() {
        let n = 500u32;
        let g = gen::random_connected(n, 5_000, 4);
        let pool = Pool::new(2);
        let f = tv_filter(&pool, &g).unwrap();
        assert_eq!(f.stats.input_edges, 5_000);
        assert!(f.stats.effective_edges <= 2 * (n as usize - 1));
        assert_eq!(
            f.stats.filtered_edges,
            f.stats.input_edges - f.stats.effective_edges
        );
        assert!(f.stats.filtered_edges >= 5_000 - 2 * (n as usize - 1));
        assert!(f.stats.bfs_levels >= 2);
        // Aux graph of the reduced set is tiny relative to TV-opt's.
        let o = tv_opt(&pool, &g).unwrap();
        assert_eq!(o.stats.effective_edges, 5_000);
        assert!(f.stats.aux_vertices < o.stats.aux_vertices);
        assert!(f.stats.aux_edges < o.stats.aux_edges);
        assert!(o.stats.sv_rounds_cc >= 1);
    }

    #[test]
    fn phases_are_populated() {
        let g = gen::random_connected(300, 900, 2);
        let pool = Pool::new(2);
        let r = tv_filter(&pool, &g).unwrap();
        assert!(r.phases.total >= r.phases.step_sum() / 2);
        assert!(r.phases.filtering.as_nanos() > 0);
        let r = tv_opt(&pool, &g).unwrap();
        assert_eq!(r.phases.filtering.as_nanos(), 0);
    }
}

//! Driver for arbitrary (possibly disconnected) graphs.
//!
//! The TV pipelines require a connected input (the paper assumes one).
//! This driver splits a general graph into connected components with
//! Shiloach–Vishkin, runs the chosen algorithm on each induced
//! subgraph, and stitches the per-edge labels back together. It backs
//! [`BccConfig::run_any`](crate::BccConfig::run_any); the per-subgraph
//! step times accumulate into one [`PhaseRecorder`], so the final
//! report reads like a single run over the whole edge list.

use crate::phase::PhaseRecorder;
use crate::pipeline::{run_connected, Algorithm, BccError, BccResult};
use crate::verify::canonicalize_edge_labels;
use bcc_connectivity::sv::{connected_components_with_ws, normalize_labels_ws};
use bcc_connectivity::tuning::TraversalTuning;
use bcc_euler::Ranker;
use bcc_graph::{Edge, Graph, GraphBuilder};
use bcc_smp::{BccWorkspace, Pool};
use std::time::Instant;

/// Biconnected components of an arbitrary simple graph: per connected
/// component, using `alg`; labels are canonical over the whole edge
/// list. The connectivity precondition of the TV pipelines is satisfied
/// by construction, so the only way this fails is a future error
/// variant — callers that know better may `expect`.
pub(crate) fn run_per_component(
    pool: &Pool,
    g: &Graph,
    alg: Algorithm,
    ranker: Ranker,
    tuning: TraversalTuning,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> Result<BccResult, BccError> {
    if alg == Algorithm::Sequential {
        return run_connected(pool, g, alg, ranker, tuning, ws, rec);
    }
    let start = Instant::now();
    let cc = connected_components_with_ws(pool, g.n(), g.edges(), tuning.sv, ws);
    if cc.num_components <= 1 {
        // Connected (or empty): run directly.
        cc.recycle(ws);
        return run_connected(pool, g, alg, ranker, tuning, ws, rec);
    }
    let mut comp_of = cc.label;
    ws.give(cc.tree_edges);
    let k = normalize_labels_ws(pool, &mut comp_of, ws) as usize;

    // Local vertex ids: position of each vertex within its component.
    let n = g.n() as usize;
    let mut counts = ws.take_filled(k, 0u32);
    let mut local = ws.take_filled(n, 0u32);
    for v in 0..n {
        let c = comp_of[v] as usize;
        local[v] = counts[c];
        counts[c] += 1;
    }

    // Partition edges by component. The nested per-subgraph vectors
    // stay plain: their count and sizes vary by input and the subgraph
    // edge lists are consumed by `Graph::new` below.
    let mut sub_edges: Vec<Vec<Edge>> = vec![Vec::new(); k];
    let mut sub_orig: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (i, e) in g.edges().iter().enumerate() {
        let c = comp_of[e.u as usize] as usize;
        debug_assert_eq!(c, comp_of[e.v as usize] as usize);
        sub_edges[c].push(Edge::new(local[e.u as usize], local[e.v as usize]));
        sub_orig[c].push(i as u32);
    }

    // Solve each component; merge labels with disjoint offsets. The
    // shared recorder accumulates the per-step times across subgraphs.
    let mut edge_comp = vec![0u32; g.m()];
    let mut stats = crate::phase::PipelineStats {
        input_edges: g.m(),
        ..Default::default()
    };
    let mut base = 0u32;
    for c in 0..k {
        if sub_edges[c].is_empty() {
            continue;
        }
        let sub = GraphBuilder::new(counts[c])
            .edges(std::mem::take(&mut sub_edges[c]))
            .build()
            .unwrap();
        let r = run_connected(pool, &sub, alg, ranker, tuning, ws, rec)?;
        for (j, &orig) in sub_orig[c].iter().enumerate() {
            edge_comp[orig as usize] = base + r.edge_comp[j];
        }
        base += r.num_components;
        stats.effective_edges += r.stats.effective_edges;
        stats.filtered_edges += r.stats.filtered_edges;
        stats.aux_vertices += r.stats.aux_vertices;
        stats.aux_edges += r.stats.aux_edges;
        stats.sv_rounds_spanning = stats.sv_rounds_spanning.max(r.stats.sv_rounds_spanning);
        stats.sv_rounds_cc = stats.sv_rounds_cc.max(r.stats.sv_rounds_cc);
        // BFS shape stats: keep the deepest component's profile.
        if r.stats.bfs_levels > stats.bfs_levels {
            stats.bfs_levels = r.stats.bfs_levels;
            stats.bfs_bottom_up_levels = r.stats.bfs_bottom_up_levels;
            stats.bfs_frontier_sizes = r.stats.bfs_frontier_sizes.clone();
            stats.bfs_directions = r.stats.bfs_directions.clone();
        }
    }
    ws.give(comp_of);
    ws.give(counts);
    ws.give(local);
    let num_components = canonicalize_edge_labels(&mut edge_comp);
    debug_assert_eq!(num_components, base);
    let mut phases = rec.phases().clone();
    phases.total = start.elapsed();
    Ok(BccResult {
        edge_comp,
        num_components,
        phases,
        stats,
    })
}

/// The single-component pipeline unit: runs `config` on a graph the
/// caller knows is **connected** — typically one part of
/// [`Graph::split_by_labels`](bcc_graph::Graph::split_by_labels) — and
/// derives its block-cut tree in one go.
///
/// This is the rebuild granule of component-scoped incremental commits
/// (bcc-query's `IndexStore`): a commit extracts each touched component
/// as a relabeled subgraph and pushes it through here, sharing the
/// config's workspace so a k-component rebuild stays in the arena's
/// zero-allocation steady state. Fails with [`BccError::Disconnected`]
/// if the connectivity precondition is violated.
pub fn component_pipeline(
    pool: &Pool,
    g: &Graph,
    config: &crate::pipeline::BccConfig,
) -> Result<(crate::pipeline::BccRun, crate::block_cut::BlockCutTree), BccError> {
    let run = config.run(pool, g)?;
    let tree = crate::block_cut::BlockCutTree::build(g, &run.result);
    Ok((run, tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BccConfig;
    use bcc_graph::gen;

    #[test]
    fn matches_sequential_on_disconnected_random_graphs() {
        for seed in 0..6u64 {
            let g = gen::random_gnm(120, 100, seed); // typically disconnected
            let pool1 = Pool::new(1);
            let base = BccConfig::new(Algorithm::Sequential)
                .run_any(&pool1, &g)
                .unwrap()
                .result;
            for p in [1, 3] {
                let pool = Pool::new(p);
                for alg in [
                    Algorithm::TvSmp,
                    Algorithm::TvOpt,
                    Algorithm::TvFilter,
                    Algorithm::FastBcc,
                ] {
                    let r = BccConfig::new(alg).run_any(&pool, &g).unwrap().result;
                    assert_eq!(r.edge_comp, base.edge_comp, "{} seed={seed}", alg.name());
                    assert_eq!(r.num_components, base.num_components);
                }
            }
        }
    }

    #[test]
    fn connected_input_short_circuits() {
        let g = gen::cycle(12);
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvOpt)
            .run_any(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.num_components, 1);
    }

    #[test]
    fn isolated_vertices_and_empty_components() {
        let g = GraphBuilder::new(7)
            .edges([(1, 2), (2, 3), (3, 1), (5, 6)])
            .build()
            .unwrap();
        let pool = Pool::new(2);
        let run = BccConfig::new(Algorithm::TvFilter)
            .run_any(&pool, &g)
            .unwrap();
        let r = &run.result;
        assert_eq!(r.num_components, 2);
        assert_eq!(r.edge_comp[0], r.edge_comp[1]);
        assert_eq!(r.edge_comp[1], r.edge_comp[2]);
        assert_ne!(r.edge_comp[3], r.edge_comp[0]);
        // The stitched report still respects the step-sum bound.
        assert!(run.report.step_sum() <= run.report.total);
    }

    #[test]
    fn no_edges_at_all() {
        let g = GraphBuilder::new(4).build().unwrap();
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvOpt)
            .run_any(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.num_components, 0);
    }

    #[test]
    fn component_pipeline_runs_one_connected_part() {
        // Two 5-cycles joined by a bridge: 3 blocks, 2 cut vertices.
        let g = gen::cycle_chain(2, 5, 0);
        let pool = Pool::new(2);
        let config = BccConfig::new(Algorithm::TvFilter);
        let (run, tree) = component_pipeline(&pool, &g, &config).unwrap();
        assert_eq!(run.result.num_components, 3);
        assert_eq!(tree.num_blocks, 3);
        assert_eq!(tree.articulation, run.result.articulation_points(&g));

        // The connectivity precondition is enforced, not assumed.
        let split = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(
            component_pipeline(&pool, &split, &config).unwrap_err(),
            BccError::Disconnected
        );
    }
}

//! Driver for arbitrary (possibly disconnected) graphs.
//!
//! The TV pipelines require a connected input (the paper assumes one).
//! This driver splits a general graph into connected components with
//! Shiloach–Vishkin, runs the chosen algorithm on each induced
//! subgraph, and stitches the per-edge labels back together.

use crate::pipeline::{biconnected_components, sequential, Algorithm, BccResult};
use crate::verify::canonicalize_edge_labels;
use bcc_connectivity::sv::{connected_components, normalize_labels};
use bcc_graph::{Edge, Graph};
use bcc_smp::Pool;
use std::time::Instant;

/// Biconnected components of an arbitrary simple graph: per connected
/// component, using `alg`; labels are canonical over the whole edge
/// list. Never fails (the connectivity precondition is satisfied by
/// construction).
pub fn biconnected_components_per_component(pool: &Pool, g: &Graph, alg: Algorithm) -> BccResult {
    if alg == Algorithm::Sequential {
        return sequential(g);
    }
    let start = Instant::now();
    let cc = connected_components(pool, g.n(), g.edges());
    if cc.num_components <= 1 {
        // Connected (or empty): run directly.
        return biconnected_components(pool, g, alg).expect("connected by SV check");
    }
    let mut comp_of = cc.label;
    let k = normalize_labels(pool, &mut comp_of) as usize;

    // Local vertex ids: position of each vertex within its component.
    let n = g.n() as usize;
    let mut counts = vec![0u32; k];
    let mut local = vec![0u32; n];
    for v in 0..n {
        let c = comp_of[v] as usize;
        local[v] = counts[c];
        counts[c] += 1;
    }

    // Partition edges by component.
    let mut sub_edges: Vec<Vec<Edge>> = vec![Vec::new(); k];
    let mut sub_orig: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (i, e) in g.edges().iter().enumerate() {
        let c = comp_of[e.u as usize] as usize;
        debug_assert_eq!(c, comp_of[e.v as usize] as usize);
        sub_edges[c].push(Edge::new(local[e.u as usize], local[e.v as usize]));
        sub_orig[c].push(i as u32);
    }

    // Solve each component; merge labels with disjoint offsets.
    let mut edge_comp = vec![0u32; g.m()];
    let mut phases = crate::phase::PhaseTimes::default();
    let mut stats = crate::phase::PipelineStats {
        input_edges: g.m(),
        ..Default::default()
    };
    let mut base = 0u32;
    for c in 0..k {
        if sub_edges[c].is_empty() {
            continue;
        }
        let sub = Graph::new(counts[c], std::mem::take(&mut sub_edges[c]));
        let r = biconnected_components(pool, &sub, alg).expect("component subgraphs are connected");
        for (j, &orig) in sub_orig[c].iter().enumerate() {
            edge_comp[orig as usize] = base + r.edge_comp[j];
        }
        base += r.num_components;
        // Accumulate the step breakdown across components.
        let p = &r.phases;
        phases.spanning_tree += p.spanning_tree;
        phases.euler_tour += p.euler_tour;
        phases.root_tree += p.root_tree;
        phases.low_high += p.low_high;
        phases.label_edge += p.label_edge;
        phases.connected_components += p.connected_components;
        phases.filtering += p.filtering;
        stats.effective_edges += r.stats.effective_edges;
        stats.filtered_edges += r.stats.filtered_edges;
        stats.aux_vertices += r.stats.aux_vertices;
        stats.aux_edges += r.stats.aux_edges;
        stats.sv_rounds_spanning = stats.sv_rounds_spanning.max(r.stats.sv_rounds_spanning);
        stats.sv_rounds_cc = stats.sv_rounds_cc.max(r.stats.sv_rounds_cc);
        stats.bfs_levels = stats.bfs_levels.max(r.stats.bfs_levels);
    }
    let num_components = canonicalize_edge_labels(&mut edge_comp);
    debug_assert_eq!(num_components, base);
    phases.total = start.elapsed();
    BccResult {
        edge_comp,
        num_components,
        phases,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;

    #[test]
    fn matches_sequential_on_disconnected_random_graphs() {
        for seed in 0..6u64 {
            let g = gen::random_gnm(120, 100, seed); // typically disconnected
            let base = sequential(&g);
            for p in [1, 3] {
                let pool = Pool::new(p);
                for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
                    let r = biconnected_components_per_component(&pool, &g, alg);
                    assert_eq!(r.edge_comp, base.edge_comp, "{} seed={seed}", alg.name());
                    assert_eq!(r.num_components, base.num_components);
                }
            }
        }
    }

    #[test]
    fn connected_input_short_circuits() {
        let g = gen::cycle(12);
        let pool = Pool::new(2);
        let r = biconnected_components_per_component(&pool, &g, Algorithm::TvOpt);
        assert_eq!(r.num_components, 1);
    }

    #[test]
    fn isolated_vertices_and_empty_components() {
        let g = Graph::from_tuples(7, [(1, 2), (2, 3), (3, 1), (5, 6)]);
        let pool = Pool::new(2);
        let r = biconnected_components_per_component(&pool, &g, Algorithm::TvFilter);
        assert_eq!(r.num_components, 2);
        assert_eq!(r.edge_comp[0], r.edge_comp[1]);
        assert_eq!(r.edge_comp[1], r.edge_comp[2]);
        assert_ne!(r.edge_comp[3], r.edge_comp[0]);
    }

    #[test]
    fn no_edges_at_all() {
        let g = Graph::new(4, vec![]);
        let pool = Pool::new(2);
        let r = biconnected_components_per_component(&pool, &g, Algorithm::TvOpt);
        assert_eq!(r.num_components, 0);
    }
}

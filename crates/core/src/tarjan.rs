//! Sequential biconnected components: Hopcroft–Tarjan DFS with an edge
//! stack (Tarjan 1972) — the linear-time baseline every parallel
//! algorithm in the paper is measured against ("Sequential" in Fig. 3).
//!
//! The DFS is iterative (explicit stack) so million-vertex instances do
//! not overflow the call stack.

use bcc_graph::{Csr, Graph};
use bcc_smp::NIL;

/// Per-edge biconnected-component labels from the sequential algorithm.
///
/// Labels are arbitrary before canonicalization (see
/// [`crate::verify::canonicalize_edge_labels`]); isolated vertices have
/// no effect; disconnected inputs are handled (each component is
/// traversed).
pub fn tarjan_bcc(g: &Graph) -> Vec<u32> {
    let csr = Csr::build(g);
    tarjan_bcc_csr(g, &csr)
}

/// [`tarjan_bcc`] reusing an existing CSR.
pub fn tarjan_bcc_csr(g: &Graph, csr: &Csr) -> Vec<u32> {
    let n = g.n() as usize;
    let m = g.m();
    let mut comp = vec![NIL; m];
    if m == 0 {
        return comp;
    }

    let mut disc = vec![NIL; n]; // discovery time; NIL = unvisited
    let mut low = vec![NIL; n];
    let mut timer = 0u32;
    let mut next_comp = 0u32;
    let mut edge_stack: Vec<u32> = Vec::new();

    // DFS frame: (vertex, parent edge id, cursor into the arc list).
    struct Frame {
        v: u32,
        parent_eid: u32,
        cursor: u32,
    }
    let mut stack: Vec<Frame> = Vec::new();

    for s in 0..n as u32 {
        if disc[s as usize] != NIL || csr.degree(s) == 0 {
            continue;
        }
        disc[s as usize] = timer;
        low[s as usize] = timer;
        timer += 1;
        stack.push(Frame {
            v: s,
            parent_eid: NIL,
            cursor: 0,
        });

        while let Some(top) = stack.last_mut() {
            let v = top.v;
            let deg = csr.degree(v) as u32;
            if top.cursor < deg {
                let k = top.cursor as usize;
                top.cursor += 1;
                let w = csr.neighbors(v)[k];
                let eid = csr.edge_ids(v)[k];
                if eid == top.parent_eid {
                    continue; // the tree arc back to the parent
                }
                if disc[w as usize] == NIL {
                    // Tree edge: descend.
                    edge_stack.push(eid);
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: w,
                        parent_eid: eid,
                        cursor: 0,
                    });
                } else if disc[w as usize] < disc[v as usize] {
                    // Back edge to an ancestor: stack it once.
                    edge_stack.push(eid);
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
                // disc[w] > disc[v]: forward view of an edge already
                // stacked from w's side — skip.
            } else {
                // v is fully explored: close out toward the parent.
                let parent_eid = top.parent_eid;
                stack.pop();
                if let Some(parent) = stack.last_mut() {
                    let u = parent.v;
                    low[u as usize] = low[u as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[u as usize] {
                        // u separates v's subtree: pop one component,
                        // delimited by v's tree edge.
                        let c = next_comp;
                        next_comp += 1;
                        loop {
                            let e = edge_stack.pop().expect("edge stack underflow");
                            comp[e as usize] = c;
                            if e == parent_eid {
                                break;
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(edge_stack.is_empty(), "leftover edges after component {s}");
    }
    debug_assert!(comp.iter().all(|&c| c != NIL));
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::canonicalize_edge_labels;
    use bcc_graph::gen;
    use bcc_graph::GraphBuilder;

    fn canonical(g: &Graph) -> (Vec<u32>, u32) {
        let mut c = tarjan_bcc(g);
        let k = canonicalize_edge_labels(&mut c);
        (c, k)
    }

    #[test]
    fn tree_every_edge_is_its_own_component() {
        let g = gen::random_tree(50, 3);
        let (c, k) = canonical(&g);
        assert_eq!(k, 49);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn cycle_is_one_component() {
        let g = gen::cycle(10);
        let (c, k) = canonical(&g);
        assert_eq!(k, 1);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn clique_is_one_component() {
        let g = gen::complete(8);
        let (_, k) = canonical(&g);
        assert_eq!(k, 1);
    }

    #[test]
    fn two_cliques_sharing_a_vertex() {
        let g = gen::two_cliques_sharing_vertex(5);
        let (c, k) = canonical(&g);
        assert_eq!(k, 2);
        // Edges within one clique share a label.
        let edges = g.edges();
        for (i, e) in edges.iter().enumerate() {
            for (j, f) in edges.iter().enumerate() {
                let same_clique = (e.u < 5 && e.v < 5 && f.u < 5 && f.v < 5)
                    || (e.u >= 4 && e.v >= 4 && f.u >= 4 && f.v >= 4);
                if same_clique {
                    assert_eq!(c[i], c[j], "{e:?} vs {f:?}");
                }
            }
        }
    }

    #[test]
    fn path_all_bridges() {
        let g = gen::path(7);
        let (_, k) = canonical(&g);
        assert_eq!(k, 6);
    }

    #[test]
    fn cycle_chain_components() {
        // 4 cycles of length 5 chained by 3 bridges: 4 + 3 components.
        let g = gen::cycle_chain(4, 5, 0);
        let (_, k) = canonical(&g);
        assert_eq!(k, 7);
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two triangles, no connection.
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build()
            .unwrap();
        let (c, k) = canonical(&g);
        assert_eq!(k, 2);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn empty_graph_and_no_edges() {
        let g = GraphBuilder::new(5).build().unwrap();
        let c = tarjan_bcc(&g);
        assert!(c.is_empty());
    }

    #[test]
    fn hand_worked_example() {
        // 0-1-2 triangle; bridge 2-3; 3-4-5 triangle; pendant 5-6.
        let g = GraphBuilder::new(7)
            .edges([
                (0, 1),
                (1, 2),
                (2, 0), // triangle A
                (2, 3), // bridge
                (3, 4),
                (4, 5),
                (5, 3), // triangle B
                (5, 6), // pendant bridge
            ])
            .build()
            .unwrap();
        let (c, k) = canonical(&g);
        assert_eq!(k, 4);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[4], c[5]);
        assert_eq!(c[5], c[6]);
        assert_ne!(c[0], c[3]);
        assert_ne!(c[3], c[4]);
        assert_ne!(c[7], c[4]);
        assert_ne!(c[7], c[3]);
    }

    #[test]
    fn torus_is_biconnected() {
        let g = gen::torus(4, 4);
        let (_, k) = canonical(&g);
        assert_eq!(k, 1);
    }
}

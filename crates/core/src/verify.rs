//! Verification: canonical labelings, derived outputs, and independent
//! oracles.
//!
//! Biconnected components are a *unique* partition of the edge set, so
//! two correct algorithms must agree exactly once labels are
//! canonicalized. The oracle here is independent of every algorithm in
//! the crate: it enumerates all simple cycles of a (small) graph and
//! takes the transitive closure of "two cycles share an edge" — the
//! paper's own definition of the relation `R_c*` (§2).

use bcc_graph::{Csr, Edge, Graph, GraphBuilder};
use bcc_smp::NIL;

/// Renumbers component labels to `0..k` in order of first appearance in
/// the edge list; returns `k`. Two labelings of the same partition
/// canonicalize to identical vectors.
///
/// Uses a dense remap table (labels are bounded by `n + m` in every
/// pipeline); falls back to a hash map for pathological label ranges.
pub fn canonicalize_edge_labels(labels: &mut [u32]) -> u32 {
    let max = match labels.iter().copied().max() {
        Some(x) => x as usize,
        None => return 0,
    };
    let mut next = 0u32;
    if max <= 4 * labels.len() + 1024 {
        let mut remap = vec![NIL; max + 1];
        for l in labels.iter_mut() {
            let slot = &mut remap[*l as usize];
            if *slot == NIL {
                *slot = next;
                next += 1;
            }
            *l = *slot;
        }
    } else {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for l in labels.iter_mut() {
            let id = *remap.entry(*l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *l = id;
        }
    }
    next
}

/// Articulation points derived from a per-edge component labeling: a
/// vertex incident to edges of two or more distinct biconnected
/// components is a cut vertex.
pub fn articulation_points(g: &Graph, edge_comp: &[u32]) -> Vec<u32> {
    let n = g.n() as usize;
    let mut first = vec![NIL; n];
    let mut is_art = vec![false; n];
    for (i, e) in g.edges().iter().enumerate() {
        let c = edge_comp[i];
        for v in [e.u, e.v] {
            let f = first[v as usize];
            if f == NIL {
                first[v as usize] = c;
            } else if f != c {
                is_art[v as usize] = true;
            }
        }
    }
    (0..n as u32).filter(|&v| is_art[v as usize]).collect()
}

/// Bridge edges derived from a labeling: the edges alone in their
/// component.
pub fn bridges(g: &Graph, edge_comp: &[u32]) -> Vec<u32> {
    let mut size = std::collections::HashMap::new();
    for &c in edge_comp {
        *size.entry(c).or_insert(0u32) += 1;
    }
    (0..g.m() as u32)
        .filter(|&i| size[&edge_comp[i as usize]] == 1)
        .collect()
}

/// Parallel articulation points: per-vertex "first component" claimed
/// by CAS; any edge observing a different component flags the vertex.
/// Same output as [`articulation_points`].
pub fn articulation_points_par(pool: &bcc_smp::Pool, g: &Graph, edge_comp: &[u32]) -> Vec<u32> {
    use bcc_smp::atomic::as_atomic_u32;
    use std::sync::atomic::Ordering;
    let n = g.n() as usize;
    let m = g.m();
    let mut first = vec![NIL; n];
    let mut flag = vec![0u32; n];
    {
        let first_a = as_atomic_u32(&mut first);
        let flag_a = as_atomic_u32(&mut flag);
        let edges = g.edges();
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                let c = edge_comp[i];
                let e = edges[i];
                for v in [e.u, e.v] {
                    let slot = &first_a[v as usize];
                    let cur = slot.load(Ordering::Relaxed);
                    let seen = if cur == NIL {
                        match slot.compare_exchange(NIL, c, Ordering::AcqRel, Ordering::Acquire) {
                            Ok(_) => c,
                            Err(other) => other,
                        }
                    } else {
                        cur
                    };
                    if seen != c {
                        flag_a[v as usize].store(1, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    bcc_primitives::compact_indices(pool, n, |v| flag[v] == 1)
}

/// Parallel bridges: histogram of component sizes (labels must be
/// canonical, `0..k`), then the edges in singleton components. Same
/// output as [`bridges`].
pub fn bridges_par(pool: &bcc_smp::Pool, g: &Graph, edge_comp: &[u32]) -> Vec<u32> {
    use bcc_smp::atomic::as_atomic_u32;
    use std::sync::atomic::Ordering;
    let m = g.m();
    let k = edge_comp.iter().copied().max().map_or(0, |x| x + 1) as usize;
    let mut size = vec![0u32; k];
    {
        let size_a = as_atomic_u32(&mut size);
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                size_a[edge_comp[i] as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    bcc_primitives::compact_indices(pool, m, |i| size[edge_comp[i] as usize] == 1)
}

/// Brute-force articulation oracle: `v` is an articulation point iff
/// deleting it strictly increases the number of connected components
/// (isolated vertices counted). O(n · (n + m)) — test-sized graphs only.
pub fn articulation_points_oracle(g: &Graph) -> Vec<u32> {
    let csr = Csr::build(g);
    let base = components_excluding(&csr, None);
    (0..g.n())
        .filter(|&v| components_excluding(&csr, Some(v)) > base)
        .collect()
}

/// Connected components among vertices != `skip`, counting isolated
/// vertices as components.
fn components_excluding(csr: &Csr, skip: Option<u32>) -> usize {
    let n = csr.n() as usize;
    let mut seen = vec![false; n];
    let mut comps = 0;
    let mut stack = Vec::new();
    for s in 0..n as u32 {
        if Some(s) == skip || seen[s as usize] {
            continue;
        }
        comps += 1;
        seen[s as usize] = true;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &w in csr.neighbors(v) {
                if Some(w) != skip && !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    comps
}

/// Independent BCC oracle for SMALL graphs: enumerate every simple
/// cycle, union-find edges appearing on a common cycle, and leave
/// cycle-free edges (bridges) as singletons. Exponential — intended for
/// n ≤ ~10.
pub fn bcc_oracle_small(g: &Graph) -> Vec<u32> {
    let m = g.m();
    let mut uf: Vec<u32> = (0..m as u32).collect();
    fn find(uf: &mut [u32], mut x: u32) -> u32 {
        while uf[x as usize] != x {
            let gp = uf[uf[x as usize] as usize];
            uf[x as usize] = gp;
            x = gp;
        }
        x
    }
    let csr = Csr::build(g);
    let n = g.n() as usize;

    // Enumerate simple cycles: for each start vertex s, DFS over paths
    // whose intermediate vertices are > forbidden set; to avoid
    // duplicates, only close cycles back to the smallest vertex s and
    // require the second vertex < last vertex.
    let mut path_edges: Vec<u32> = Vec::new();
    let mut in_path = vec![false; n];

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        csr: &Csr,
        s: u32,
        v: u32,
        in_path: &mut Vec<bool>,
        path_edges: &mut Vec<u32>,
        uf: &mut Vec<u32>,
    ) {
        for (w, eid) in csr.arcs(v) {
            if w == s && path_edges.len() >= 2 && *path_edges.first().unwrap() < eid {
                // Found a cycle s..v-s; union all its edges with eid.
                let root = find(uf, eid);
                for &e in path_edges.iter() {
                    let r = find(uf, e);
                    uf[r as usize] = root;
                }
            } else if w > s && !in_path[w as usize] {
                in_path[w as usize] = true;
                path_edges.push(eid);
                dfs(csr, s, w, in_path, path_edges, uf);
                path_edges.pop();
                in_path[w as usize] = false;
            }
        }
    }

    for s in 0..n as u32 {
        in_path[s as usize] = true;
        dfs(&csr, s, s, &mut in_path, &mut path_edges, &mut uf);
        in_path[s as usize] = false;
    }

    (0..m as u32).map(|e| find(&mut uf, e)).collect()
}

/// Structural validity check for a claimed BCC partition, feasible on
/// medium graphs: every class induces a connected subgraph that is
/// two-vertex-connected when it has ≥ 2 edges, and classes are maximal
/// (any two classes sharing a vertex would break 2-connectivity if
/// merged — implied by comparing against [`bcc_oracle_small`] in tests;
/// here we check the per-class invariants).
pub fn assert_classes_biconnected(g: &Graph, edge_comp: &[u32]) {
    use std::collections::HashMap;
    let mut classes: HashMap<u32, Vec<Edge>> = HashMap::new();
    for (i, &c) in edge_comp.iter().enumerate() {
        classes.entry(c).or_default().push(g.edges()[i]);
    }
    for (c, edges) in classes {
        // Relabel vertices of the class subgraph.
        let mut verts: Vec<u32> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
        verts.sort_unstable();
        verts.dedup();
        let index: HashMap<u32, u32> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let sub = GraphBuilder::new(verts.len() as u32)
            .edges(edges.iter().map(|e| Edge::new(index[&e.u], index[&e.v])))
            .build()
            .unwrap();
        assert!(
            bcc_graph::validate::is_connected(&sub),
            "component {c} not connected"
        );
        if sub.m() >= 2 {
            // 2-vertex-connected: no articulation point inside.
            let arts = articulation_points_oracle(&sub);
            assert!(
                arts.is_empty(),
                "component {c} has internal articulation points {arts:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_bcc;
    use bcc_graph::gen;

    #[test]
    fn canonicalize_is_idempotent_and_order_based() {
        let mut a = vec![7, 7, 3, 7, 9, 3];
        let k = canonicalize_edge_labels(&mut a);
        assert_eq!(k, 3);
        assert_eq!(a, vec![0, 0, 1, 0, 2, 1]);
        let mut b = a.clone();
        assert_eq!(canonicalize_edge_labels(&mut b), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn articulation_oracle_on_known_graphs() {
        // Path 0-1-2-3: internal vertices are articulation points.
        assert_eq!(articulation_points_oracle(&gen::path(4)), vec![1, 2]);
        // Cycle: none.
        assert!(articulation_points_oracle(&gen::cycle(6)).is_empty());
        // Star: only the hub.
        assert_eq!(articulation_points_oracle(&gen::star(5)), vec![0]);
        // Two cliques sharing vertex k-1 = 3.
        assert_eq!(
            articulation_points_oracle(&gen::two_cliques_sharing_vertex(4)),
            vec![3]
        );
    }

    #[test]
    fn derived_articulation_matches_oracle_via_tarjan() {
        for seed in 0..10u64 {
            let g = gen::random_connected(30, 45, seed);
            let comp = tarjan_bcc(&g);
            let mut got = articulation_points(&g, &comp);
            got.sort_unstable();
            let want = articulation_points_oracle(&g);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn bridges_on_known_graphs() {
        let g = gen::path(5);
        let comp = tarjan_bcc(&g);
        assert_eq!(bridges(&g, &comp).len(), 4);

        let g = gen::cycle(5);
        let comp = tarjan_bcc(&g);
        assert!(bridges(&g, &comp).is_empty());

        let g = gen::cycle_chain(3, 4, 0);
        let comp = tarjan_bcc(&g);
        assert_eq!(bridges(&g, &comp).len(), 2);
    }

    #[test]
    fn cycle_oracle_equals_tarjan_on_small_graphs() {
        for seed in 0..30u64 {
            let g = gen::random_gnm(8, (seed % 14) as usize + 3, seed);
            let mut want = bcc_oracle_small(&g);
            let kw = canonicalize_edge_labels(&mut want);
            let mut got = tarjan_bcc(&g);
            let kg = canonicalize_edge_labels(&mut got);
            assert_eq!(kw, kg, "seed {seed}: {g:?}");
            assert_eq!(want, got, "seed {seed}: {g:?}");
        }
    }

    #[test]
    fn class_invariants_hold_for_tarjan() {
        for seed in 0..5u64 {
            let g = gen::random_connected(40, 80, seed);
            let comp = tarjan_bcc(&g);
            assert_classes_biconnected(&g, &comp);
        }
    }

    #[test]
    fn parallel_derivations_match_sequential() {
        use bcc_smp::Pool;
        for seed in 0..6u64 {
            let g = gen::random_connected(150, 320, seed);
            let mut comp = tarjan_bcc(&g);
            canonicalize_edge_labels(&mut comp);
            for p in [1, 4] {
                let pool = Pool::new(p);
                let mut seq_art = articulation_points(&g, &comp);
                seq_art.sort_unstable();
                assert_eq!(
                    articulation_points_par(&pool, &g, &comp),
                    seq_art,
                    "articulation seed={seed} p={p}"
                );
                assert_eq!(
                    bridges_par(&pool, &g, &comp),
                    bridges(&g, &comp),
                    "bridges seed={seed} p={p}"
                );
            }
        }
    }

    #[test]
    fn parallel_derivations_trivial_inputs() {
        use bcc_smp::Pool;
        let pool = Pool::new(2);
        let g = gen::path(2);
        let comp = vec![0u32];
        assert!(articulation_points_par(&pool, &g, &comp).is_empty());
        assert_eq!(bridges_par(&pool, &g, &comp), vec![0]);
        let empty = GraphBuilder::new(3).build().unwrap();
        assert!(articulation_points_par(&pool, &empty, &[]).is_empty());
        assert!(bridges_par(&pool, &empty, &[]).is_empty());
    }

    #[test]
    fn oracle_handles_k4() {
        let g = gen::complete(4);
        let mut c = bcc_oracle_small(&g);
        assert_eq!(canonicalize_edge_labels(&mut c), 1);
    }
}

//! The block-cut tree and 2-edge-connected components — the structures
//! downstream applications (fault-tolerant network design, §1) actually
//! consume once the biconnected components are known.
//!
//! The **block-cut tree** of a connected graph has one node per
//! biconnected component (block) and one per articulation vertex, with
//! an edge whenever the cut vertex belongs to the block. It is always a
//! tree (a forest for disconnected inputs), and paths in it describe
//! exactly which failures separate which parts of the graph.
//!
//! **2-edge-connected components** are the vertex classes that survive
//! any single *link* failure: the connected components of the graph
//! with its bridges removed.

use crate::pipeline::BccResult;
use crate::verify::{articulation_points, bridges};
use bcc_graph::{Csr, Graph, GraphBuilder};
use bcc_smp::{Pool, NIL};

/// The block-cut tree (forest, for disconnected inputs).
#[derive(Clone, Debug)]
pub struct BlockCutTree {
    /// Number of blocks (biconnected components); block node ids are
    /// `0..num_blocks`.
    pub num_blocks: u32,
    /// Articulation vertices, ascending; cut node `num_blocks + i`
    /// corresponds to `articulation[i]`.
    pub articulation: Vec<u32>,
    /// Per graph vertex: its cut-node index `i` (into `articulation`),
    /// or `NIL` if it is not an articulation point.
    pub cut_index: Vec<u32>,
    /// Tree edges `(block node, cut node)`, deduplicated.
    pub edges: Vec<(u32, u32)>,
}

impl BlockCutTree {
    /// Builds the block-cut tree from a BCC result (labels must be
    /// canonical, as produced by the pipelines).
    ///
    /// ```
    /// use bcc_core::{Algorithm, BccConfig, BlockCutTree};
    /// use bcc_graph::gen;
    /// use bcc_smp::Pool;
    ///
    /// let g = gen::two_cliques_sharing_vertex(4);
    /// let pool = Pool::new(1);
    /// let run = BccConfig::new(Algorithm::Sequential).run(&pool, &g).unwrap();
    /// let t = BlockCutTree::build(&g, &run.result);
    /// assert_eq!(t.num_blocks, 2);
    /// assert_eq!(t.articulation, vec![3]);
    /// ```
    pub fn build(g: &Graph, r: &BccResult) -> Self {
        let num_blocks = r.num_components;
        let articulation = articulation_points(g, &r.edge_comp);
        let mut cut_index = vec![NIL; g.n() as usize];
        for (i, &v) in articulation.iter().enumerate() {
            cut_index[v as usize] = i as u32;
        }
        // (block, cut) incidences; dedup via sort.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, e) in g.edges().iter().enumerate() {
            let b = r.edge_comp[i];
            for v in [e.u, e.v] {
                let ci = cut_index[v as usize];
                if ci != NIL {
                    edges.push((b, num_blocks + ci));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        BlockCutTree {
            num_blocks,
            articulation,
            cut_index,
            edges,
        }
    }

    /// Total nodes (blocks + cut vertices).
    pub fn num_nodes(&self) -> u32 {
        self.num_blocks + self.articulation.len() as u32
    }

    /// Degree of each node — leaves of the block-cut tree are the
    /// "leaf blocks" whose loss does not disconnect anyone else.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes() as usize];
        for &(a, b) in &self.edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        deg
    }

    /// True if tree node `x` is a block node (ids `0..num_blocks`);
    /// false for cut nodes (`num_blocks..num_nodes`).
    #[inline]
    pub fn is_block_node(&self, x: u32) -> bool {
        x < self.num_blocks
    }

    /// The tree itself as a [`Graph`] over its node ids — block nodes
    /// `0..num_blocks` followed by cut nodes.
    pub fn tree_graph(&self) -> Graph {
        GraphBuilder::new(self.num_nodes())
            .edges(self.edges.iter().copied())
            .build()
            .unwrap()
    }

    /// CSR adjacency over the tree's nodes, so consumers can traverse
    /// the tree (rooting passes, path walks) without rebuilding
    /// neighbor lists from the raw edge pairs themselves. O(nodes +
    /// edges) to build; `csr.neighbors(x)` then answers in O(1).
    pub fn adjacency(&self) -> Csr {
        Csr::build(&self.tree_graph())
    }
}

/// 2-edge-connected components: per-vertex labels such that two
/// vertices share a label iff they remain connected after any single
/// edge is removed. Computed as the connected components of `g` minus
/// its bridges (isolated vertices get singleton classes).
pub fn two_edge_connected_components(pool: &Pool, g: &Graph, r: &BccResult) -> Vec<u32> {
    let bridge_ids: std::collections::HashSet<u32> = bridges(g, &r.edge_comp).into_iter().collect();
    let keep: Vec<bcc_graph::Edge> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| !bridge_ids.contains(&(*i as u32)))
        .map(|(_, &e)| e)
        .collect();
    let mut cc = bcc_connectivity::sv::connected_components(pool, g.n(), &keep);
    bcc_connectivity::sv::normalize_labels(pool, &mut cc.label);
    cc.label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::sequential_impl as sequential;
    use bcc_graph::gen;

    fn tree_of(g: &Graph) -> BlockCutTree {
        let r = sequential(g);
        BlockCutTree::build(g, &r)
    }

    #[test]
    fn cycle_has_single_block_no_cuts() {
        let t = tree_of(&gen::cycle(8));
        assert_eq!(t.num_blocks, 1);
        assert!(t.articulation.is_empty());
        assert!(t.edges.is_empty());
    }

    #[test]
    fn path_alternates_blocks_and_cuts() {
        // Path on 5 vertices: 4 blocks (bridges), 3 cut vertices.
        let t = tree_of(&gen::path(5));
        assert_eq!(t.num_blocks, 4);
        assert_eq!(t.articulation, vec![1, 2, 3]);
        // Block-cut tree of a path is itself a path with 7 nodes, 6 edges.
        assert_eq!(t.edges.len(), 6);
        let deg = t.degrees();
        assert_eq!(deg.iter().filter(|&&d| d == 1).count(), 2); // two leaf blocks
    }

    #[test]
    fn block_cut_tree_is_a_tree_for_connected_inputs() {
        for seed in 0..8u64 {
            let g = gen::random_connected(150, 260, seed);
            let t = tree_of(&g);
            // A tree on its nodes: edges = nodes - 1 when >= 1 node and
            // the structure is connected. Verify both via union-find.
            let nodes = t.num_nodes();
            if nodes <= 1 {
                assert!(t.edges.is_empty());
                continue;
            }
            let edges: Vec<bcc_graph::Edge> = t
                .edges
                .iter()
                .map(|&(a, b)| bcc_graph::Edge::new(a, b))
                .collect();
            let cc = bcc_connectivity::seq::components_union_find(nodes, &edges);
            assert_eq!(
                cc.count, 1,
                "block-cut tree must be connected (seed {seed})"
            );
            assert_eq!(
                t.edges.len() as u32,
                nodes - 1,
                "block-cut tree must be acyclic (seed {seed})"
            );
        }
    }

    #[test]
    fn adjacency_matches_edge_pairs() {
        let t = tree_of(&gen::path(5)); // 4 blocks, 3 cuts, a 7-node path
        let csr = t.adjacency();
        assert_eq!(csr.n(), t.num_nodes());
        let deg = t.degrees();
        for x in 0..t.num_nodes() {
            assert_eq!(csr.degree(x) as u32, deg[x as usize], "node {x}");
            for &y in csr.neighbors(x) {
                let pair = if t.is_block_node(x) { (x, y) } else { (y, x) };
                assert!(t.edges.contains(&pair), "arc ({x},{y}) not a tree edge");
            }
        }
        // Cut node for vertex 2 (cut_index 1) touches exactly 2 blocks.
        let cut_node = t.num_blocks + 1;
        assert_eq!(csr.degree(cut_node), 2);
        assert!(!t.is_block_node(cut_node));
        assert!(t.is_block_node(0));
    }

    #[test]
    fn two_cliques_structure() {
        let g = gen::two_cliques_sharing_vertex(4); // cut vertex = 3
        let t = tree_of(&g);
        assert_eq!(t.num_blocks, 2);
        assert_eq!(t.articulation, vec![3]);
        assert_eq!(t.edges, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn two_ecc_on_known_graphs() {
        let pool = Pool::new(2);
        // Cycle: everyone together.
        let g = gen::cycle(6);
        let r = sequential(&g);
        let l = two_edge_connected_components(&pool, &g, &r);
        assert!(l.iter().all(|&x| x == l[0]));

        // Path: all singletons.
        let g = gen::path(5);
        let r = sequential(&g);
        let l = two_edge_connected_components(&pool, &g, &r);
        let mut s = l.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 5);

        // Chain of cycles: one class per cycle.
        let g = gen::cycle_chain(3, 4, 0);
        let r = sequential(&g);
        let l = two_edge_connected_components(&pool, &g, &r);
        let mut s = l.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
        assert_eq!(l[0], l[1]);
        assert_ne!(l[0], l[4]);
    }

    #[test]
    fn two_ecc_survives_any_single_edge_removal() {
        let pool = Pool::new(2);
        for seed in 0..4u64 {
            let g = gen::random_connected(40, 70, seed);
            let r = sequential(&g);
            let l = two_edge_connected_components(&pool, &g, &r);
            // Removing any one edge must keep same-class vertices
            // connected.
            for drop in 0..g.m() {
                let h = g.edge_subgraph(|j| j != drop);
                let cc = bcc_connectivity::seq::components_union_find(h.n(), h.edges());
                for u in 0..g.n() {
                    for v in (u + 1)..g.n() {
                        if l[u as usize] == l[v as usize] {
                            assert_eq!(
                                cc.label[u as usize], cc.label[v as usize],
                                "class broken by removing edge {drop} (seed {seed})"
                            );
                        }
                    }
                }
            }
        }
    }
}

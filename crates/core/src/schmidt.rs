//! Schmidt's chain decomposition — an independent linear-time verifier.
//!
//! Schmidt (2013) decomposes a connected graph into an ear-like family
//! of *chains*: walk each back edge of a DFS tree from its
//! ancestor endpoint down the tree until a previously-visited vertex.
//! Then:
//!
//! * an edge is a **bridge** iff it belongs to no chain;
//! * a vertex is a **cut vertex** iff it is incident to a bridge (with
//!   degree ≥ 2) or it is the first vertex of a chain that is a cycle,
//!   other than the first chain;
//! * the graph is **biconnected** iff the decomposition has exactly one
//!   cycle (the first chain) and no bridges (n ≥ 3).
//!
//! The algorithm shares nothing with the Tarjan–Vishkin machinery (no
//! low/high, no auxiliary graph) and nothing with the Hopcroft–Tarjan
//! edge stack, so it serves as a scale-capable cross-check of both —
//! the test suite compares all three on large random instances.

use bcc_graph::{Csr, Graph};
use bcc_smp::NIL;

/// Output of [`chain_decomposition`].
#[derive(Clone, Debug)]
pub struct ChainDecomposition {
    /// Chains as vertex sequences; a chain is a cycle iff its first and
    /// last vertices coincide.
    pub chains: Vec<Vec<u32>>,
    /// Bridge edges (indices into the input edge list), ascending.
    pub bridges: Vec<u32>,
    /// Cut vertices, ascending.
    pub articulation: Vec<u32>,
    /// Number of chains that are cycles.
    pub num_cycles: usize,
}

impl ChainDecomposition {
    /// Schmidt's 2-connectivity test (requires n ≥ 3).
    pub fn is_biconnected(&self) -> bool {
        self.bridges.is_empty() && self.num_cycles == 1 && !self.chains.is_empty()
    }

    /// Schmidt's 2-edge-connectivity test.
    pub fn is_two_edge_connected(&self) -> bool {
        self.bridges.is_empty() && !self.chains.is_empty()
    }
}

/// Computes Schmidt's chain decomposition of a connected graph.
/// Panics if `g` is disconnected (it is a verifier for connected
/// instances) or has fewer than 1 vertex.
///
/// ```
/// use bcc_core::schmidt::chain_decomposition;
/// use bcc_graph::gen;
///
/// let d = chain_decomposition(&gen::cycle(5));
/// assert!(d.is_biconnected());
/// let d = chain_decomposition(&gen::path(5));
/// assert_eq!(d.bridges.len(), 4);
/// ```
pub fn chain_decomposition(g: &Graph) -> ChainDecomposition {
    let n = g.n() as usize;
    let m = g.m();
    assert!(n >= 1);
    let csr = Csr::build(g);

    // Iterative DFS: parents, parent edge ids, DFS numbers, order.
    let mut parent = vec![NIL; n];
    let mut parent_eid = vec![NIL; n];
    let mut dfs_num = vec![NIL; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    {
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        parent[0] = 0;
        dfs_num[0] = 0;
        order.push(0);
        let mut counter = 1u32;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor < csr.degree(v) {
                let k = *cursor;
                *cursor += 1;
                let w = csr.neighbors(v)[k];
                if dfs_num[w as usize] == NIL {
                    parent[w as usize] = v;
                    parent_eid[w as usize] = csr.edge_ids(v)[k];
                    dfs_num[w as usize] = counter;
                    counter += 1;
                    order.push(w);
                    stack.push((w, 0));
                }
            } else {
                stack.pop();
            }
        }
        assert_eq!(
            counter as usize, n,
            "chain decomposition requires a connected graph"
        );
    }

    let is_tree_edge = {
        let mut t = vec![false; m];
        for &e in &parent_eid {
            if e != NIL {
                t[e as usize] = true;
            }
        }
        t
    };

    // Walk chains: for each vertex u in DFS order, each incident back
    // edge whose other endpoint w is a descendant (dfs_num[w] > dfs_num[u])
    // starts a chain u, w, parent(w), ... until a visited vertex.
    let mut visited = vec![false; n];
    let mut edge_in_chain = vec![false; m];
    let mut chains: Vec<Vec<u32>> = Vec::new();
    let mut num_cycles = 0usize;

    for &u in &order {
        for (w, eid) in csr.arcs(u) {
            if is_tree_edge[eid as usize] || edge_in_chain[eid as usize] {
                continue;
            }
            if dfs_num[w as usize] < dfs_num[u as usize] {
                continue; // w is the ancestor endpoint; chain starts there
            }
            // Start a chain at u along the back edge (u, w).
            visited[u as usize] = true;
            edge_in_chain[eid as usize] = true;
            let mut chain = vec![u, w];
            let mut x = w;
            while !visited[x as usize] {
                visited[x as usize] = true;
                edge_in_chain[parent_eid[x as usize] as usize] = true;
                x = parent[x as usize];
                chain.push(x);
            }
            if chain.first() == chain.last() {
                num_cycles += 1;
            }
            chains.push(chain);
        }
    }

    let bridges: Vec<u32> = (0..m as u32)
        .filter(|&i| !edge_in_chain[i as usize])
        .collect();

    // Cut vertices.
    let mut is_cut = vec![false; n];
    let deg = g.degrees();
    for &b in &bridges {
        let e = g.edges()[b as usize];
        for v in [e.u, e.v] {
            if deg[v as usize] >= 2 {
                is_cut[v as usize] = true;
            }
        }
    }
    for (i, chain) in chains.iter().enumerate() {
        if i > 0 && chain.first() == chain.last() {
            is_cut[chain[0] as usize] = true;
        }
    }
    let articulation: Vec<u32> = (0..n as u32).filter(|&v| is_cut[v as usize]).collect();

    ChainDecomposition {
        chains,
        bridges,
        articulation,
        num_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::articulation_points_oracle;
    use bcc_graph::gen;
    use bcc_graph::GraphBuilder;

    #[test]
    fn cycle_is_one_cycle_chain() {
        let d = chain_decomposition(&gen::cycle(9));
        assert_eq!(d.chains.len(), 1);
        assert_eq!(d.num_cycles, 1);
        assert!(d.is_biconnected());
        assert!(d.bridges.is_empty());
        assert!(d.articulation.is_empty());
    }

    #[test]
    fn tree_is_all_bridges() {
        let g = gen::random_tree(40, 2);
        let d = chain_decomposition(&g);
        assert!(d.chains.is_empty());
        assert_eq!(d.bridges.len(), 39);
        assert!(!d.is_two_edge_connected());
        // Cut vertices = internal vertices (degree >= 2).
        let want = articulation_points_oracle(&g);
        assert_eq!(d.articulation, want);
    }

    #[test]
    fn two_cliques_detects_the_shared_vertex() {
        let g = gen::two_cliques_sharing_vertex(5);
        let d = chain_decomposition(&g);
        assert!(d.bridges.is_empty());
        assert!(!d.is_biconnected()); // two cycles
        assert_eq!(d.articulation, vec![4]);
    }

    #[test]
    fn biconnected_families_pass_the_test() {
        for g in [
            gen::complete(8),
            gen::wheel(12),
            gen::ladder(9),
            gen::hypercube(4),
            gen::torus(4, 5),
            gen::complete_bipartite(3, 6),
        ] {
            let d = chain_decomposition(&g);
            assert!(d.is_biconnected(), "{g:?}");
        }
    }

    #[test]
    fn matches_oracles_on_random_graphs() {
        use crate::tarjan::tarjan_bcc;
        use crate::verify::bridges as derive_bridges;
        for seed in 0..12u64 {
            let g = gen::random_connected(120, 200 + (seed as usize * 13) % 200, seed);
            let d = chain_decomposition(&g);
            assert_eq!(
                d.articulation,
                articulation_points_oracle(&g),
                "articulation seed={seed}"
            );
            let comp = tarjan_bcc(&g);
            assert_eq!(d.bridges, derive_bridges(&g, &comp), "bridges seed={seed}");
        }
    }

    #[test]
    fn every_edge_in_at_most_one_chain_and_chains_cover_non_bridges() {
        let g = gen::random_connected(200, 520, 7);
        let d = chain_decomposition(&g);
        let chain_edges: usize = d.chains.iter().map(|c| c.len() - 1).sum();
        assert_eq!(chain_edges + d.bridges.len(), g.m());
    }

    #[test]
    #[should_panic]
    fn disconnected_rejected() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        let _ = chain_decomposition(&g);
    }

    #[test]
    fn single_edge_graph() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
        let d = chain_decomposition(&g);
        assert_eq!(d.bridges, vec![0]);
        assert!(d.articulation.is_empty()); // both endpoints degree 1
    }
}

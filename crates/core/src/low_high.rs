//! The Low-high step (paper step 4).
//!
//! `low(v)` = smallest preorder number that is either in v's subtree or
//! adjacent to v's subtree by a nontree edge; `high(v)` the largest.
//! Every nontree edge must be inspected — the cost TV-filter attacks by
//! shrinking the edge set first.
//!
//! SMP realization: per-vertex keys
//! `key_min(u) = min(pre(u), min{pre(w) : (u,w) nontree})` scattered
//! into preorder order with atomic min/max, then subtree aggregation as
//! an O(1)-query range-min/range-max over the preorder-contiguous
//! subtree intervals (sparse table, O(n log n) parallel build).
//!
//! Low and high are computed in **one fused sweep**: the
//! [`RangeMinMaxTable`] builds each doubling level's min and max arrays
//! in a single parallel pass (half the barriers and half the passes
//! over the input of two separate tables), and one query loop fills
//! `low` and `high` together. The unfused construction is kept as
//! [`compute_low_high_two_pass`] — the equivalence reference the
//! proptests check against.

use bcc_euler::TreeInfo;
use bcc_graph::Edge;
use bcc_primitives::{Extremum, RangeMinMaxTable, RangeTable};
use bcc_smp::atomic::{as_atomic_u32, fetch_max_u32, fetch_min_u32};
use bcc_smp::workspace::{alloc_cap, alloc_filled, alloc_iota, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice};

/// Per-vertex low/high values, in preorder numbers.
#[derive(Clone, Debug)]
pub struct LowHigh {
    /// `low[v]`, a preorder number.
    pub low: Vec<u32>,
    /// `high[v]`, a preorder number.
    pub high: Vec<u32>,
}

impl LowHigh {
    /// Returns both arrays to `ws` for reuse.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.low);
        ws.give(self.high);
    }
}

/// Strategy for the subtree aggregation of the Low-high step.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LowHighMethod {
    /// Sparse-table range min/max over preorder intervals: O(n log n)
    /// work, O(1) aggregation rounds — insensitive to tree depth.
    RangeTable,
    /// Level-synchronous bottom-up sweep: O(n + m) work but one
    /// parallel round per tree level — wins on shallow (BFS) trees,
    /// loses on deep ones (see the `ablation_lowhigh` bench).
    LevelSweep,
    /// Depth-based choice: the sweep while the tree is shallower than
    /// `4·log2(n) + 32` levels, the table otherwise. What the pipelines
    /// use.
    Auto,
}

/// Computes low/high for all vertices in one fused sweep.
///
/// `is_tree_edge[i]` flags the spanning-tree edges within `edges`;
/// `info` is the rooted-tree data for that spanning tree.
pub fn compute_low_high(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
) -> LowHigh {
    compute_low_high_impl(pool, edges, is_tree_edge, info, None)
}

/// [`compute_low_high`] with the result and all scratch taken from
/// `ws`; return the result's arrays with [`LowHigh::recycle`].
pub fn compute_low_high_ws(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    ws: &BccWorkspace,
) -> LowHigh {
    compute_low_high_impl(pool, edges, is_tree_edge, info, Some(ws))
}

fn compute_low_high_impl(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    ws: Option<&BccWorkspace>,
) -> LowHigh {
    let n = info.preorder.len();
    let m = edges.len();

    // Keys indexed by preorder number.
    let mut key_min: Vec<u32> = alloc_iota(ws, n);
    let mut key_max: Vec<u32> = alloc_iota(ws, n);
    {
        let kmin = as_atomic_u32(&mut key_min);
        let kmax = as_atomic_u32(&mut key_max);
        let pre = &info.preorder;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                if is_tree_edge[i] {
                    continue;
                }
                let e = edges[i];
                let pu = pre[e.u as usize];
                let pv = pre[e.v as usize];
                fetch_min_u32(&kmin[pu as usize], pv);
                fetch_min_u32(&kmin[pv as usize], pu);
                fetch_max_u32(&kmax[pu as usize], pv);
                fetch_max_u32(&kmax[pv as usize], pu);
            }
        });
    }

    // One fused table: each doubling level's min AND max are produced
    // by the same parallel pass.
    let table = match ws {
        Some(ws) => RangeMinMaxTable::build_ws(pool, &key_min, &key_max, ws),
        None => RangeMinMaxTable::build(pool, &key_min, &key_max),
    };
    give_opt(ws, key_min);
    give_opt(ws, key_max);

    let mut low = alloc_filled(ws, n, 0u32);
    let mut high = alloc_filled(ws, n, 0u32);
    {
        let low_s = SharedSlice::new(&mut low);
        let high_s = SharedSlice::new(&mut high);
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                let r = info.subtree_interval(v as u32);
                unsafe {
                    low_s.write(v, table.query_min(r.start, r.end));
                    high_s.write(v, table.query_max(r.start, r.end));
                }
            }
        });
    }
    if let Some(ws) = ws {
        table.recycle(ws);
    }
    LowHigh { low, high }
}

/// The unfused reference construction: two separate [`RangeTable`]s
/// (one pass over the keys each) and the same query loop. Kept for the
/// equivalence proptests; the pipelines use the fused
/// [`compute_low_high`].
pub fn compute_low_high_two_pass(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
) -> LowHigh {
    let n = info.preorder.len();
    let m = edges.len();

    let mut key_min: Vec<u32> = (0..n as u32).collect();
    let mut key_max: Vec<u32> = (0..n as u32).collect();
    {
        let kmin = as_atomic_u32(&mut key_min);
        let kmax = as_atomic_u32(&mut key_max);
        let pre = &info.preorder;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                if is_tree_edge[i] {
                    continue;
                }
                let e = edges[i];
                let pu = pre[e.u as usize];
                let pv = pre[e.v as usize];
                fetch_min_u32(&kmin[pu as usize], pv);
                fetch_min_u32(&kmin[pv as usize], pu);
                fetch_max_u32(&kmax[pu as usize], pv);
                fetch_max_u32(&kmax[pv as usize], pu);
            }
        });
    }

    let tmin = RangeTable::build(pool, &key_min, Extremum::Min);
    let tmax = RangeTable::build(pool, &key_max, Extremum::Max);

    let mut low = vec![0u32; n];
    let mut high = vec![0u32; n];
    {
        let low_s = SharedSlice::new(&mut low);
        let high_s = SharedSlice::new(&mut high);
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                let r = info.subtree_interval(v as u32);
                unsafe {
                    low_s.write(v, tmin.query(r.start, r.end));
                    high_s.write(v, tmax.query(r.start, r.end));
                }
            }
        });
    }
    LowHigh { low, high }
}

/// [`compute_low_high`] with an explicit aggregation strategy.
pub fn compute_low_high_with(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    method: LowHighMethod,
) -> LowHigh {
    compute_low_high_with_impl(pool, edges, is_tree_edge, info, method, None)
}

/// [`compute_low_high_with`] with the result and all scratch taken
/// from `ws`; return the result's arrays with [`LowHigh::recycle`].
pub fn compute_low_high_with_ws(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    method: LowHighMethod,
    ws: &BccWorkspace,
) -> LowHigh {
    compute_low_high_with_impl(pool, edges, is_tree_edge, info, method, Some(ws))
}

fn compute_low_high_with_impl(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    method: LowHighMethod,
    ws: Option<&BccWorkspace>,
) -> LowHigh {
    match method {
        LowHighMethod::RangeTable => compute_low_high_impl(pool, edges, is_tree_edge, info, ws),
        LowHighMethod::LevelSweep => low_high_level_sweep(pool, edges, is_tree_edge, info, ws),
        LowHighMethod::Auto => {
            let n = info.preorder.len() as u32;
            let depth = info.depth.iter().copied().max().unwrap_or(0);
            let budget = 4 * (32 - n.max(2).leading_zeros()) + 32;
            if depth <= budget {
                low_high_level_sweep(pool, edges, is_tree_edge, info, ws)
            } else {
                compute_low_high_impl(pool, edges, is_tree_edge, info, ws)
            }
        }
    }
}

/// Level-synchronous bottom-up aggregation: vertices are bucketed by
/// depth; sweeping levels deepest-first, each vertex folds its value
/// into its parent with an atomic min/max. One barrier per level.
fn low_high_level_sweep(
    pool: &Pool,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    ws: Option<&BccWorkspace>,
) -> LowHigh {
    let n = info.preorder.len();
    let m = edges.len();

    // Per-VERTEX keys this time (no preorder indirection needed).
    let mut low: Vec<u32> = alloc_filled(ws, n, 0);
    let mut high: Vec<u32> = alloc_filled(ws, n, 0);
    {
        let low_s = SharedSlice::new(&mut low);
        let high_s = SharedSlice::new(&mut high);
        let pre = &info.preorder;
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                let p = pre[v];
                unsafe {
                    low_s.write(v, p);
                    high_s.write(v, p);
                }
            }
        });
    }
    {
        let lo = as_atomic_u32(&mut low);
        let hi = as_atomic_u32(&mut high);
        let pre = &info.preorder;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                if is_tree_edge[i] {
                    continue;
                }
                let e = edges[i];
                let pu = pre[e.u as usize];
                let pv = pre[e.v as usize];
                fetch_min_u32(&lo[e.u as usize], pv);
                fetch_min_u32(&lo[e.v as usize], pu);
                fetch_max_u32(&hi[e.u as usize], pv);
                fetch_max_u32(&hi[e.v as usize], pu);
            }
        });
    }

    // Bucket vertices by depth (counting sort).
    let max_depth = info.depth.iter().copied().max().unwrap_or(0) as usize;
    let mut bucket_of = alloc_filled(ws, max_depth + 2, 0u32);
    for &d in &info.depth {
        bucket_of[d as usize + 1] += 1;
    }
    for d in 0..=max_depth {
        bucket_of[d + 1] += bucket_of[d];
    }
    let mut by_level = alloc_filled(ws, n, 0u32);
    {
        let mut cursor: Vec<u32> = alloc_cap(ws, bucket_of.len());
        cursor.extend_from_slice(&bucket_of);
        for v in 0..n as u32 {
            let d = info.depth[v as usize] as usize;
            by_level[cursor[d] as usize] = v;
            cursor[d] += 1;
        }
        give_opt(ws, cursor);
    }

    // Sweep levels deepest-first; one parallel round per level.
    {
        let lo = as_atomic_u32(&mut low);
        let hi = as_atomic_u32(&mut high);
        for d in (1..=max_depth).rev() {
            let level = &by_level[bucket_of[d] as usize..bucket_of[d + 1] as usize];
            pool.run(|ctx| {
                for k in ctx.block_range(level.len()) {
                    let v = level[k] as usize;
                    let p = info.parent[v] as usize;
                    fetch_min_u32(&lo[p], lo[v].load(std::sync::atomic::Ordering::Relaxed));
                    fetch_max_u32(&hi[p], hi[v].load(std::sync::atomic::Ordering::Relaxed));
                }
            });
        }
    }

    give_opt(ws, bucket_of);
    give_opt(ws, by_level);

    LowHigh { low, high }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_connectivity::bfs::bfs_tree_seq;
    use bcc_euler::{dfs_euler_tour, tree_computations};
    use bcc_graph::{gen, Csr, Graph, GraphBuilder};
    use bcc_smp::NIL;

    /// Builds (edges, is_tree, info) for `g` rooted at `root` using a
    /// BFS tree.
    fn setup(g: &Graph, root: u32, pool: &Pool) -> (Vec<Edge>, Vec<bool>, TreeInfo) {
        let csr = Csr::build(g);
        let bfs = bfs_tree_seq(&csr, root);
        let mut is_tree = vec![false; g.m()];
        for &e in &bfs.tree_edge_ids() {
            is_tree[e as usize] = true;
        }
        let tree_edges: Vec<Edge> = bfs
            .tree_edge_ids()
            .iter()
            .map(|&i| g.edges()[i as usize])
            .collect();
        let tour = dfs_euler_tour(pool, g.n(), tree_edges, &bfs.parent, root);
        let info = tree_computations(pool, &tour, root);
        (g.edges().to_vec(), is_tree, info)
    }

    /// O(n·m) oracle straight from the definition.
    fn oracle(edges: &[Edge], is_tree: &[bool], info: &TreeInfo) -> (Vec<u32>, Vec<u32>) {
        let n = info.preorder.len();
        let mut low = vec![0u32; n];
        let mut high = vec![0u32; n];
        for v in 0..n as u32 {
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for d in 0..n as u32 {
                if info.is_ancestor(v, d) {
                    lo = lo.min(info.preorder[d as usize]);
                    hi = hi.max(info.preorder[d as usize]);
                    for (i, e) in edges.iter().enumerate() {
                        if is_tree[i] {
                            continue;
                        }
                        if e.u == d {
                            lo = lo.min(info.preorder[e.v as usize]);
                            hi = hi.max(info.preorder[e.v as usize]);
                        }
                        if e.v == d {
                            lo = lo.min(info.preorder[e.u as usize]);
                            hi = hi.max(info.preorder[e.u as usize]);
                        }
                    }
                }
            }
            low[v as usize] = lo;
            high[v as usize] = hi;
        }
        (low, high)
    }

    #[test]
    fn level_sweep_matches_range_table() {
        for seed in 0..6u64 {
            let g = gen::random_connected(150, 450, seed);
            for p in [1, 4] {
                let pool = Pool::new(p);
                let (edges, is_tree, info) = setup(&g, 0, &pool);
                let a = compute_low_high_with(
                    &pool,
                    &edges,
                    &is_tree,
                    &info,
                    LowHighMethod::RangeTable,
                );
                let b = compute_low_high_with(
                    &pool,
                    &edges,
                    &is_tree,
                    &info,
                    LowHighMethod::LevelSweep,
                );
                assert_eq!(a.low, b.low, "low seed={seed} p={p}");
                assert_eq!(a.high, b.high, "high seed={seed} p={p}");
            }
        }
    }

    #[test]
    fn level_sweep_on_deep_tree() {
        // Worst case for the sweep: a path rooted at one end.
        let g = gen::path(300);
        let pool = Pool::new(2);
        let (edges, is_tree, info) = setup(&g, 0, &pool);
        let a = compute_low_high(&pool, &edges, &is_tree, &info);
        let b = compute_low_high_with(&pool, &edges, &is_tree, &info, LowHighMethod::LevelSweep);
        assert_eq!(a.low, b.low);
        assert_eq!(a.high, b.high);
    }

    #[test]
    fn fused_matches_two_pass_and_ws_rerun_is_all_hits() {
        for seed in 0..4u64 {
            let g = gen::random_connected(150, 450, seed);
            let pool = Pool::new(4);
            let (edges, is_tree, info) = setup(&g, 0, &pool);
            let a = compute_low_high(&pool, &edges, &is_tree, &info);
            let b = compute_low_high_two_pass(&pool, &edges, &is_tree, &info);
            assert_eq!(a.low, b.low, "seed={seed}");
            assert_eq!(a.high, b.high, "seed={seed}");

            let ws = BccWorkspace::new();
            for method in [LowHighMethod::RangeTable, LowHighMethod::LevelSweep] {
                let warm = compute_low_high_with_ws(&pool, &edges, &is_tree, &info, method, &ws);
                warm.recycle(&ws);
                let before = ws.stats();
                let again = compute_low_high_with_ws(&pool, &edges, &is_tree, &info, method, &ws);
                assert_eq!(again.low, b.low, "{method:?} seed={seed}");
                assert_eq!(again.high, b.high, "{method:?} seed={seed}");
                again.recycle(&ws);
                let delta = ws.stats().delta_since(&before);
                assert_eq!(delta.misses, 0, "{method:?} rerun must not miss");
            }
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..6u64 {
            let g = gen::random_connected(60, 150, seed);
            for p in [1, 4] {
                let pool = Pool::new(p);
                let (edges, is_tree, info) = setup(&g, 0, &pool);
                let lh = compute_low_high(&pool, &edges, &is_tree, &info);
                let (olow, ohigh) = oracle(&edges, &is_tree, &info);
                assert_eq!(lh.low, olow, "low seed={seed} p={p}");
                assert_eq!(lh.high, ohigh, "high seed={seed} p={p}");
            }
        }
    }

    #[test]
    fn tree_low_high_are_subtree_extremes() {
        // With no nontree edges, low(v)=pre(v) and high(v)=pre(v)+size(v)-1.
        let g = gen::random_tree(100, 5);
        let pool = Pool::new(2);
        let (edges, is_tree, info) = setup(&g, 0, &pool);
        let lh = compute_low_high(&pool, &edges, &is_tree, &info);
        for v in 0..100u32 {
            assert_eq!(lh.low[v as usize], info.preorder[v as usize]);
            assert_eq!(
                lh.high[v as usize],
                info.preorder[v as usize] + info.size[v as usize] - 1
            );
        }
    }

    #[test]
    fn cycle_low_of_everyone_is_zero() {
        // On a cycle rooted anywhere, the single back edge links the
        // deepest vertex to the root: low(v)=0 for all v.
        let g = gen::cycle(12);
        let pool = Pool::new(3);
        let (edges, is_tree, info) = setup(&g, 4, &pool);
        assert_eq!(is_tree.iter().filter(|&&t| !t).count(), 1);
        let lh = compute_low_high(&pool, &edges, &is_tree, &info);
        for v in 0..12u32 {
            let _ = v;
        }
        // Every vertex's subtree contains or touches the back edge's
        // endpoints chain down to preorder 0 only along one branch;
        // check against the oracle instead of hand-reasoning.
        let (olow, ohigh) = oracle(&edges, &is_tree, &info);
        assert_eq!(lh.low, olow);
        assert_eq!(lh.high, ohigh);
        assert_eq!(lh.low[info.root as usize], 0);
        assert_eq!(lh.high[info.root as usize], 11);
    }

    #[test]
    fn singleton_graph() {
        let g = GraphBuilder::new(1).build().unwrap();
        let pool = Pool::new(2);
        let (edges, is_tree, info) = setup(&g, 0, &pool);
        let lh = compute_low_high(&pool, &edges, &is_tree, &info);
        assert_eq!(lh.low, vec![0]);
        assert_eq!(lh.high, vec![0]);
    }

    #[test]
    fn nontree_flags_nil_consistency() {
        // parent_edge of root is NIL; make sure setup produced sane data.
        let g = gen::complete(6);
        let pool = Pool::new(1);
        let (_, is_tree, info) = setup(&g, 2, &pool);
        assert_eq!(info.parent_edge[2], NIL);
        assert_eq!(is_tree.iter().filter(|&&t| t).count(), 5);
    }
}

#![warn(missing_docs)]
//! Biconnected components algorithms for shared-memory multiprocessors.
//!
//! Reproduction of Cong & Bader, *An Experimental Study of Parallel
//! Biconnected Components Algorithms on Symmetric Multiprocessors
//! (SMPs)*, IPDPS 2005. Five algorithms over a common input
//! representation ([`bcc_graph::Graph`], an edge list):
//!
//! * [`Algorithm::Sequential`] — Tarjan's DFS baseline ([`tarjan`]).
//! * [`Algorithm::TvSmp`] — coarse-grained Tarjan–Vishkin emulation.
//! * [`Algorithm::TvOpt`] — the engineered variant (merged rooting,
//!   cache-friendly tour, prefix sums).
//! * [`Algorithm::TvFilter`] — the paper's new algorithm: filter
//!   non-essential edges through a BFS tree + spanning forest of the
//!   remainder, run TV on ≤ 2(n−1) edges, place filtered edges by
//!   condition 1.
//! * [`Algorithm::FastBcc`] — the skeleton-based successor
//!   ([`fast_bcc`]): tree tags computed directly on the BFS tree — no
//!   Euler tour, no list ranking — for an O(n) auxiliary footprint.
//!
//! The entry point is the [`BccConfig`] builder; each run returns the
//! component labels plus a structured [`PhaseReport`] (per-step times,
//! barrier-wait and load-imbalance when the pool carries a
//! [`bcc_smp::Telemetry`] sink).
//!
//! ```
//! use bcc_core::{Algorithm, BccConfig};
//! use bcc_graph::gen;
//! use bcc_smp::Pool;
//!
//! let g = gen::two_cliques_sharing_vertex(4); // two blocks, one cut vertex
//! let pool = Pool::new(2);
//! let run = BccConfig::new(Algorithm::TvFilter).run(&pool, &g).unwrap();
//! assert_eq!(run.result.num_components, 2);
//! assert_eq!(run.result.articulation_points(&g), vec![3]);
//! assert_eq!(run.report.algorithm, "TV-filter");
//! ```

pub mod aux_graph;
pub mod block_cut;
pub mod counting;
pub mod fast_bcc;
pub mod low_high;
pub mod per_component;
pub mod phase;
pub mod pipeline;
pub mod schmidt;
pub mod tarjan;
pub mod verify;

pub use aux_graph::{build_aux_graph, build_aux_graph_fused, build_aux_graph_fused_ws, AuxGraph};
pub use block_cut::{two_edge_connected_components, BlockCutTree};
pub use counting::double_bfs_upper_bound;
pub use low_high::{
    compute_low_high, compute_low_high_two_pass, compute_low_high_with, compute_low_high_with_ws,
    compute_low_high_ws, LowHigh, LowHighMethod,
};
pub use per_component::component_pipeline;
pub use phase::{PhaseRecorder, PhaseReport, PhaseTimes, PipelineStats, Step, StepReport};
pub use pipeline::{Algorithm, BccConfig, BccError, BccResult, BccRun};
pub use schmidt::{chain_decomposition, ChainDecomposition};
pub use tarjan::tarjan_bcc;

/// Reusable scratch-buffer arena, re-exported from [`bcc_smp`] so
/// [`BccConfig::workspace`] is usable without a second crate
/// dependency.
pub use bcc_smp::{BccWorkspace, WorkspaceStats};

/// List-ranking selector for the classic Euler tour (re-exported from
/// [`bcc_euler`] so [`BccConfig::ranker`] is usable without a second
/// crate dependency).
pub use bcc_euler::Ranker;

/// Traversal ablation knobs, re-exported from [`bcc_connectivity`] so
/// [`BccConfig::tuning`] is usable without a second crate dependency.
pub use bcc_connectivity::{BfsStrategy, SvVariant, TraversalTuning};

//! The Label-edge step: building the auxiliary graph (paper Alg. 1).
//!
//! Vertices of the auxiliary graph G′ are the edges of G: tree edge
//! `(v, p(v))` maps to vertex `v`; the j-th nontree edge maps to vertex
//! `n + j` (j assigned by a prefix sum over nontree flags). Edges of G′
//! encode the relation R′_c, tested per input edge:
//!
//! 1. nontree `(u, v)` with `pre(v) < pre(u)` → `{u, n + j}`;
//! 2. nontree `(u, v)` with u, v unrelated → `{u, v}`;
//! 3. tree `(u, p(u))` with `w = p(u) ≠ root` and some nontree edge
//!    leaving u's subtree above or around w
//!    (`low(u) < pre(w)` or `high(u) ≥ pre(w) + size(w)`) → `{u, w}`.
//!
//! Two constructions are provided:
//!
//! * [`build_aux_graph`] — the literal paper realization: discovered
//!   edges land in a 3m-slot scratch array (one region per condition,
//!   exactly as the paper allocates `L′`) and are compacted by prefix
//!   sums — no concurrent writes, EREW-style. Kept as the equivalence
//!   reference.
//! * [`build_aux_graph_fused`] — what the pipelines run: a count pass
//!   evaluates conditions 1–3 per edge into **per-thread counters**, an
//!   O(P) serial exclusive scan assigns each thread its output ranges,
//!   and an emit pass writes the nontree numbering and an exactly-sized
//!   edge list directly. The count pass records each edge's expensive
//!   decision — condition 2 for nontree edges, condition 3 for tree
//!   edges; they are mutually exclusive, so one bit per edge — in a
//!   [`Bitmap`] decision cache, and the emit pass reads it back one
//!   word per 64 edges instead of re-touching the preorder/low/high/size
//!   arrays. The 3m scratch, its EMPTY-fill sweep, and the two
//!   compaction sweeps all disappear (scratch drops from 3m slots to
//!   m/64 + m + O(P)); both passes walk the same word-aligned contiguous
//!   block partition, so the nontree numbering is bit-identical to the
//!   prefix-sum numbering for every thread count.

use crate::low_high::LowHigh;
use bcc_euler::TreeInfo;
use bcc_graph::Edge;
use bcc_primitives::compact::compact_with;
use bcc_primitives::scan::exclusive_scan_par;
use bcc_smp::workspace::{alloc_cap, alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Bitmap, Pool, SharedSlice, NIL};

/// The auxiliary graph G′ plus the nontree-edge numbering needed to map
/// component labels back to input edges.
#[derive(Clone, Debug)]
pub struct AuxGraph {
    /// `n + (number of nontree edges)`.
    pub num_vertices: u32,
    /// Auxiliary edge list.
    pub edges: Vec<Edge>,
    /// Per input edge: its nontree ordinal `j` (`NIL` for tree edges);
    /// the aux vertex of nontree edge `i` is `n + nontree_index[i]`.
    pub nontree_index: Vec<u32>,
}

impl AuxGraph {
    /// Returns the graph's owned arrays to `ws` for reuse.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.edges);
        ws.give(self.nontree_index);
    }
}

/// Builds the auxiliary graph (paper Alg. 1), literal 3-region
/// realization. Reference implementation — the pipelines run
/// [`build_aux_graph_fused`].
pub fn build_aux_graph(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    lh: &LowHigh,
) -> AuxGraph {
    let m = edges.len();

    // Number the nontree edges by prefix sum.
    let mut nontree_index = vec![0u32; m];
    {
        let ni = SharedSlice::new(&mut nontree_index);
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                unsafe { ni.write(i, u32::from(!is_tree_edge[i])) };
            }
        });
    }
    let num_nontree = exclusive_scan_par(pool, &mut nontree_index);
    {
        // Blank out the slots of tree edges (their scan values are
        // meaningless).
        let ni = SharedSlice::new(&mut nontree_index);
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                if is_tree_edge[i] {
                    unsafe { ni.write(i, NIL) };
                }
            }
        });
    }

    // The 3m-slot scratch L′: regions [0,m), [m,2m), [2m,3m) hold the
    // candidates of conditions 1, 2, 3.
    const EMPTY: Edge = Edge { u: NIL, v: NIL };
    let mut scratch = vec![EMPTY; 3 * m];
    {
        let ls = SharedSlice::new(&mut scratch);
        let pre = &info.preorder;
        let ni: &[u32] = &nontree_index;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                let e = edges[i];
                if !is_tree_edge[i] {
                    let (pu, pv) = (pre[e.u as usize], pre[e.v as usize]);
                    // Condition 1: attach the nontree edge's aux vertex
                    // to the tree edge of its larger-preorder endpoint.
                    let x = if pu > pv { e.u } else { e.v };
                    unsafe { ls.write(i, Edge::new(x, n + ni[i])) };
                    // Condition 2: unrelated endpoints join their two
                    // tree edges.
                    if !info.is_ancestor(e.u, e.v) && !info.is_ancestor(e.v, e.u) {
                        unsafe { ls.write(m + i, e) };
                    }
                } else {
                    // Condition 3: tree edge (c, w = p(c)); if some
                    // nontree edge escapes c's subtree past w, join the
                    // tree edges of c and w.
                    let c = if info.parent[e.v as usize] == e.u {
                        e.v
                    } else {
                        e.u
                    };
                    let w = info.parent[c as usize];
                    if w != info.root {
                        let pw = pre[w as usize];
                        let escapes = lh.low[c as usize] < pw
                            || lh.high[c as usize] >= pw + info.size[w as usize];
                        if escapes {
                            unsafe { ls.write(2 * m + i, Edge::new(c, w)) };
                        }
                    }
                }
            }
        });
    }

    // Compact L′ into the aux edge list by prefix sums.
    let aux_edges = compact_with(pool, &scratch, |_, e| e.u != NIL);

    AuxGraph {
        num_vertices: n + num_nontree,
        edges: aux_edges,
        nontree_index,
    }
}

/// Condition 2: the nontree edge's endpoints are unrelated in the tree.
#[inline]
fn cond2_holds(e: Edge, info: &TreeInfo) -> bool {
    !info.is_ancestor(e.u, e.v) && !info.is_ancestor(e.v, e.u)
}

/// Condition 3: for tree edge `e = (c, w = p(c))` with `w ≠ root`,
/// returns `Some((c, w))` when a nontree edge escapes `c`'s subtree
/// past `w`.
#[inline]
fn cond3_emit(e: Edge, info: &TreeInfo, lh: &LowHigh) -> Option<(u32, u32)> {
    let c = if info.parent[e.v as usize] == e.u {
        e.v
    } else {
        e.u
    };
    let w = info.parent[c as usize];
    if w == info.root {
        return None;
    }
    let pw = info.preorder[w as usize];
    let escapes = lh.low[c as usize] < pw || lh.high[c as usize] >= pw + info.size[w as usize];
    escapes.then_some((c, w))
}

/// Builds the auxiliary graph in two fused passes: per-thread
/// count → O(P) scan → direct emit. Produces the same nontree
/// numbering as [`build_aux_graph`] and the same edge *multiset* up to
/// emission order (downstream connected components are
/// order-insensitive).
pub fn build_aux_graph_fused(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    lh: &LowHigh,
) -> AuxGraph {
    build_aux_graph_fused_impl(pool, n, edges, is_tree_edge, info, lh, None)
}

/// [`build_aux_graph_fused`] with the result and scratch taken from
/// `ws`; return the result's arrays with [`AuxGraph::recycle`].
pub fn build_aux_graph_fused_ws(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    lh: &LowHigh,
    ws: &BccWorkspace,
) -> AuxGraph {
    build_aux_graph_fused_impl(pool, n, edges, is_tree_edge, info, lh, Some(ws))
}

fn build_aux_graph_fused_impl(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    is_tree_edge: &[bool],
    info: &TreeInfo,
    lh: &LowHigh,
    ws: Option<&BccWorkspace>,
) -> AuxGraph {
    let m = edges.len();
    let p = pool.threads();
    const EMPTY: Edge = Edge { u: NIL, v: NIL };

    // Count pass: per-thread (nontree, emitted) totals over the same
    // word-aligned contiguous block partition the emit pass will walk.
    // Each edge's expensive decision — condition 2 (ancestry test) for
    // nontree edges, condition 3 (low/high escape test) for tree edges —
    // is recorded in `decisions` so the emit pass never re-evaluates it;
    // word-aligned ownership makes the bitmap stores plain, not atomic.
    let decisions = match ws {
        Some(ws) => Bitmap::new_in(m, ws),
        None => Bitmap::new(m),
    };
    let mut nontree_counts = alloc_filled(ws, p + 1, 0u32);
    let mut emit_counts = alloc_filled(ws, p + 1, 0u32);
    {
        let nc = SharedSlice::new(&mut nontree_counts);
        let ec = SharedSlice::new(&mut emit_counts);
        let decisions = &decisions;
        pool.run(|ctx| {
            let mut nontree = 0u32;
            let mut emit = 0u32;
            for w in ctx.block_range_of(Bitmap::word_range_of(0..m)) {
                let hi = (w * 64 + 64).min(m);
                let mut bits = 0u64;
                for i in w * 64..hi {
                    let e = edges[i];
                    let hit = if !is_tree_edge[i] {
                        nontree += 1;
                        emit += 1; // condition 1 always emits
                        cond2_holds(e, info)
                    } else {
                        cond3_emit(e, info, lh).is_some()
                    };
                    bits |= u64::from(hit) << (i % 64);
                    emit += u32::from(hit);
                }
                decisions.store_word_unsync(w, bits);
            }
            // SAFETY: slot tid+1 is written by this thread only.
            unsafe {
                nc.write(ctx.tid() + 1, nontree);
                ec.write(ctx.tid() + 1, emit);
            }
        });
    }
    // Serial exclusive scans over P+1 counters.
    for t in 0..p {
        nontree_counts[t + 1] += nontree_counts[t];
        emit_counts[t + 1] += emit_counts[t];
    }
    let num_nontree = nontree_counts[p];
    let total_emit = emit_counts[p] as usize;

    // Emit pass: every thread owns the output ranges its counts claimed.
    let mut nontree_index = alloc_filled(ws, m, 0u32);
    // Capacity is the *bound* (every nontree edge emits once for
    // condition 1 and at most once for condition 2, every tree edge at
    // most once for condition 3), not `total_emit`: the bound depends
    // only on the edge list and the tree-edge *count*, so a rerun over
    // a different (racily chosen) spanning tree of the same graph
    // requests the same arena class — `total_emit` varies with the
    // tree and would flake the zero-miss steady state across runs.
    let mut aux_edges: Vec<Edge> = alloc_cap(ws, m + num_nontree as usize);
    aux_edges.resize(total_emit, EMPTY);
    {
        let ni = SharedSlice::new(&mut nontree_index);
        let out = SharedSlice::new(&mut aux_edges);
        let nontree_base: &[u32] = &nontree_counts;
        let emit_base: &[u32] = &emit_counts;
        let decisions = &decisions;
        pool.run(|ctx| {
            let mut j = nontree_base[ctx.tid()];
            let mut k = emit_base[ctx.tid()] as usize;
            for w in ctx.block_range_of(Bitmap::word_range_of(0..m)) {
                let hi = (w * 64 + 64).min(m);
                // One load answers 64 edges' cached decisions.
                let bits = decisions.load_word(w);
                for i in w * 64..hi {
                    let e = edges[i];
                    let hit = bits >> (i % 64) & 1 == 1;
                    if !is_tree_edge[i] {
                        let (pu, pv) = (info.preorder[e.u as usize], info.preorder[e.v as usize]);
                        let x = if pu > pv { e.u } else { e.v };
                        // SAFETY: i is in this thread's block; k stays
                        // within the [emit_base[tid], emit_base[tid+1])
                        // range the count pass reserved (both passes walk
                        // the same blocks and the decision bits fix the
                        // emit count).
                        unsafe {
                            ni.write(i, j);
                            out.write(k, Edge::new(x, n + j));
                        }
                        k += 1;
                        j += 1;
                        if hit {
                            unsafe { out.write(k, e) };
                            k += 1;
                        }
                    } else {
                        unsafe { ni.write(i, NIL) };
                        if hit {
                            // c and w are two cheap parent reads; the
                            // cached bit already paid the escape test.
                            let c = if info.parent[e.v as usize] == e.u {
                                e.v
                            } else {
                                e.u
                            };
                            let wv = info.parent[c as usize];
                            unsafe { out.write(k, Edge::new(c, wv)) };
                            k += 1;
                        }
                    }
                }
            }
            debug_assert_eq!(j, nontree_base[ctx.tid() + 1]);
            debug_assert_eq!(k, emit_base[ctx.tid() + 1] as usize);
        });
    }
    if let Some(ws) = ws {
        decisions.recycle(ws);
    }
    give_opt(ws, nontree_counts);
    give_opt(ws, emit_counts);

    AuxGraph {
        num_vertices: n + num_nontree,
        edges: aux_edges,
        nontree_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::low_high::compute_low_high;
    use bcc_connectivity::bfs::bfs_tree_seq;
    use bcc_euler::{dfs_euler_tour, tree_computations};
    use bcc_graph::{gen, Csr, Graph};
    use bcc_smp::Pool;

    fn build_for(g: &Graph, root: u32, p: usize) -> (AuxGraph, TreeInfo, Vec<bool>) {
        let pool = Pool::new(p);
        let csr = Csr::build(g);
        let bfs = bfs_tree_seq(&csr, root);
        let mut is_tree = vec![false; g.m()];
        for &e in &bfs.tree_edge_ids() {
            is_tree[e as usize] = true;
        }
        let tree_edges: Vec<Edge> = bfs
            .tree_edge_ids()
            .iter()
            .map(|&i| g.edges()[i as usize])
            .collect();
        let tour = dfs_euler_tour(&pool, g.n(), tree_edges, &bfs.parent, root);
        let info = tree_computations(&pool, &tour, root);
        let lh = compute_low_high(&pool, g.edges(), &is_tree, &info);
        let aux = build_aux_graph(&pool, g.n(), g.edges(), &is_tree, &info, &lh);
        (aux, info, is_tree)
    }

    #[test]
    fn tree_input_produces_no_aux_edges() {
        let g = gen::random_tree(40, 1);
        let (aux, _, _) = build_for(&g, 0, 2);
        assert!(aux.edges.is_empty());
        assert_eq!(aux.num_vertices, 40);
    }

    #[test]
    fn nontree_numbering_is_dense_and_disjoint() {
        let g = gen::random_connected(50, 120, 3);
        let (aux, _, is_tree) = build_for(&g, 0, 3);
        let mut seen = vec![false; 120 - 49];
        for (i, &tree) in is_tree.iter().enumerate() {
            if tree {
                assert_eq!(aux.nontree_index[i], NIL);
            } else {
                let j = aux.nontree_index[i] as usize;
                assert!(!seen[j], "duplicate nontree ordinal {j}");
                seen[j] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
        assert_eq!(aux.num_vertices, 50 + (120 - 49));
    }

    #[test]
    fn cycle_aux_graph_connects_everything() {
        // A cycle is one biconnected component: its aux graph (n-1 tree
        // edges + 1 nontree edge as vertices) must be connected.
        let g = gen::cycle(8);
        let (aux, info, _) = build_for(&g, 0, 2);
        // Vertices in play: 1..8 (tree-edge children) and 8 + 0.
        let comp = bcc_connectivity::seq::components_union_find(aux.num_vertices, &aux.edges);
        let mut labels: Vec<u32> = (1..8u32).map(|v| comp.label[v as usize]).collect();
        labels.push(comp.label[8]);
        labels.dedup();
        assert_eq!(labels.len(), 1, "aux graph of a cycle must be connected");
        assert_eq!(info.root, 0);
    }

    #[test]
    fn aux_edges_respect_vertex_bounds() {
        for seed in 0..4u64 {
            let g = gen::random_connected(60, 140, seed);
            let (aux, _, _) = build_for(&g, 0, 4);
            for e in &aux.edges {
                assert!(e.u < aux.num_vertices && e.v < aux.num_vertices);
                assert_ne!(e.u, e.v);
            }
        }
    }

    #[test]
    fn paper_example_sizes_hold_for_small_biconnected_graph() {
        // For any biconnected graph the aux graph has m vertices in play
        // (n-1 tree + m-n+1 nontree) and they form one component.
        let g = gen::complete(5);
        let (aux, _, _) = build_for(&g, 0, 1);
        let comp = bcc_connectivity::seq::components_union_find(aux.num_vertices, &aux.edges);
        let mut reps: Vec<u32> = (1..5u32).map(|v| comp.label[v as usize]).collect();
        for j in 0..(10 - 4) as u32 {
            reps.push(comp.label[(5 + j) as usize]);
        }
        reps.sort_unstable();
        reps.dedup();
        assert_eq!(reps.len(), 1);
    }

    #[test]
    fn fused_matches_three_region_build_as_multiset() {
        for seed in 0..5u64 {
            let g = gen::random_connected(80, 220, seed);
            for p in [1, 3, 4] {
                let pool = Pool::new(p);
                let csr = Csr::build(&g);
                let bfs = bfs_tree_seq(&csr, 0);
                let mut is_tree = vec![false; g.m()];
                for &e in &bfs.tree_edge_ids() {
                    is_tree[e as usize] = true;
                }
                let tree_edges: Vec<Edge> = bfs
                    .tree_edge_ids()
                    .iter()
                    .map(|&i| g.edges()[i as usize])
                    .collect();
                let tour = dfs_euler_tour(&pool, g.n(), tree_edges, &bfs.parent, 0);
                let info = tree_computations(&pool, &tour, 0);
                let lh = compute_low_high(&pool, g.edges(), &is_tree, &info);
                let a = build_aux_graph(&pool, g.n(), g.edges(), &is_tree, &info, &lh);
                let b = build_aux_graph_fused(&pool, g.n(), g.edges(), &is_tree, &info, &lh);
                assert_eq!(a.num_vertices, b.num_vertices, "seed={seed} p={p}");
                assert_eq!(a.nontree_index, b.nontree_index, "seed={seed} p={p}");
                let key = |e: &Edge| (e.u.min(e.v), e.u.max(e.v));
                let mut ae: Vec<_> = a.edges.iter().map(key).collect();
                let mut be: Vec<_> = b.edges.iter().map(key).collect();
                ae.sort_unstable();
                be.sort_unstable();
                assert_eq!(ae, be, "edge multiset seed={seed} p={p}");

                // ws rerun is all hits.
                let ws = bcc_smp::BccWorkspace::new();
                let warm =
                    build_aux_graph_fused_ws(&pool, g.n(), g.edges(), &is_tree, &info, &lh, &ws);
                warm.recycle(&ws);
                let before = ws.stats();
                let again =
                    build_aux_graph_fused_ws(&pool, g.n(), g.edges(), &is_tree, &info, &lh, &ws);
                assert_eq!(again.nontree_index, a.nontree_index);
                assert_eq!(again.edges.len(), b.edges.len());
                again.recycle(&ws);
                let delta = ws.stats().delta_since(&before);
                assert_eq!(delta.misses, 0, "steady-state rerun must not miss");
            }
        }
    }

    #[test]
    fn thread_count_invariance_of_the_partition() {
        // The aux graph itself is NOT identical across thread counts:
        // the parallel children-CSR build behind the DFS tour assigns
        // child order nondeterministically, so preorder numbers — and
        // with them the condition-1 edges — can differ. What must be
        // invariant is the *partition* the aux graph induces on the
        // input edges.
        let g = gen::random_connected(80, 200, 9);
        let (a1, i1, t1) = build_for(&g, 0, 1);
        let (a4, i4, t4) = build_for(&g, 0, 4);
        assert_eq!(a1.num_vertices, a4.num_vertices);
        assert_eq!(a1.nontree_index, a4.nontree_index);
        assert_eq!(t1, t4, "BFS tree is deterministic");

        let partition = |aux: &AuxGraph, info: &TreeInfo, is_tree: &[bool]| -> Vec<u32> {
            let cc = bcc_connectivity::seq::components_union_find(aux.num_vertices, &aux.edges);
            let mut labels: Vec<u32> = (0..g.m())
                .map(|i| {
                    let e = g.edges()[i];
                    if is_tree[i] {
                        let c = if info.parent[e.v as usize] == e.u {
                            e.v
                        } else {
                            e.u
                        };
                        cc.label[c as usize]
                    } else {
                        cc.label[(g.n() + aux.nontree_index[i]) as usize]
                    }
                })
                .collect();
            crate::verify::canonicalize_edge_labels(&mut labels);
            labels
        };
        assert_eq!(partition(&a1, &i1, &t1), partition(&a4, &i4, &t4));
    }
}

//! Counting biconnected components with two breadth-first traversals
//! (the paper's "immediate corollary" to Theorem 2).
//!
//! The paper claims: compute a BFS tree `T`, then a spanning forest `F`
//! of `G − T`; the number of components of `F` is the number of
//! biconnected components of `G`. Two caveats discovered while
//! reproducing (both demonstrated in the test suite and discussed in
//! EXPERIMENTS.md):
//!
//! 1. **Bridges** are biconnected components without nontree edges —
//!    they contribute no `F`-component, so they must be counted
//!    separately (a tree edge `(v, p(v))` is a bridge iff no nontree
//!    edge connects `v`'s subtree past `v`; here we detect them as tree
//!    edges whose child subtree is left untouched by nontree edges).
//! 2. The claim that each non-bridge biconnected component yields
//!    exactly **one** `F`-component can fail: a theta graph admits a
//!    valid BFS tree whose two nontree edges are vertex-disjoint (see
//!    `tests/filter_invariants.rs`). Theorem 2 only guarantees each
//!    `F`-component lies **within** one biconnected component, so the
//!    double-BFS number is an *upper bound* that is usually tight on
//!    the random instances the paper evaluates.
//!
//! [`double_bfs_upper_bound`] therefore returns an upper bound on the
//! number of biconnected components, computed in O(d + log n) parallel
//! time — useful as a fast estimator and as the paper artifact.

use bcc_connectivity::bfs::bfs_tree_par;
use bcc_connectivity::sv::connected_components;
use bcc_graph::{Csr, Edge, Graph};
use bcc_smp::{Pool, NIL};

/// Upper bound on the number of biconnected components of the
/// connected graph `g` by the paper's double-BFS method. Exact whenever
/// each block's nontree edges are connected in `G − T` (always true in
/// practice on the paper's random instances; see module docs for the
/// exception).
/// ```
/// use bcc_core::double_bfs_upper_bound;
/// use bcc_graph::gen;
/// use bcc_smp::Pool;
///
/// let bound = double_bfs_upper_bound(&Pool::new(2), &gen::cycle(12)).unwrap();
/// assert_eq!(bound, 1);
/// ```
pub fn double_bfs_upper_bound(pool: &Pool, g: &Graph) -> Result<u32, crate::BccError> {
    let n = g.n();
    let m = g.m();
    if m == 0 {
        return Ok(0);
    }
    let csr = Csr::build_par(pool, g);
    let bfs = bfs_tree_par(pool, &csr, 0);
    if bfs.reached != n {
        return Err(crate::BccError::Disconnected);
    }
    let mut in_tree = vec![false; m];
    for v in 0..n {
        let eid = bfs.parent_eid[v as usize];
        if eid != NIL {
            in_tree[eid as usize] = true;
        }
    }
    let nontree: Vec<Edge> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| !in_tree[*i])
        .map(|(_, &e)| e)
        .collect();
    let forest = connected_components(pool, n, &nontree);

    // Non-trivial F-components: total components minus vertices isolated
    // in G - T.
    let mut touched = vec![false; n as usize];
    for e in &nontree {
        touched[e.u as usize] = true;
        touched[e.v as usize] = true;
    }
    let touched_count = touched.iter().filter(|&&t| t).count() as u32;
    let nontrivial = touched_count - forest.tree_edges.len() as u32;

    // Bridge count: a tree edge (v, p(v)) is a bridge iff no nontree
    // edge joins v's subtree to the rest. Cheap equivalent via the BCC
    // pipeline's low/high would defeat the purpose; instead use the
    // corollary-level O(m) test: v's subtree is "escaped" iff some
    // nontree edge has exactly one endpoint in it. With a BFS tree,
    // subtree membership needs preorder intervals — compute them from
    // the DFS tour of T (O(n), no nontree edges involved).
    let tree_edges: Vec<Edge> = (0..n)
        .filter(|&v| bfs.parent_eid[v as usize] != NIL)
        .map(|v| g.edges()[bfs.parent_eid[v as usize] as usize])
        .collect();
    let tour = bcc_euler::dfs_euler_tour(pool, n, tree_edges, &bfs.parent, 0);
    let info = bcc_euler::tree_computations(pool, &tour, 0);
    let mut escaped = vec![false; n as usize]; // v's subtree is escaped
    {
        use bcc_smp::atomic::{as_atomic_u32, fetch_max_u32, fetch_min_u32};
        // min/max preorder reached by nontree edges incident to each
        // subtree: reuse the low/high machinery in miniature.
        let mut key_min: Vec<u32> = (0..n).collect();
        let mut key_max: Vec<u32> = (0..n).collect();
        {
            let kmin = as_atomic_u32(&mut key_min);
            let kmax = as_atomic_u32(&mut key_max);
            let pre = &info.preorder;
            pool.run(|ctx| {
                for i in ctx.block_range(nontree.len()) {
                    let e = nontree[i];
                    let pu = pre[e.u as usize];
                    let pv = pre[e.v as usize];
                    fetch_min_u32(&kmin[pu as usize], pv);
                    fetch_min_u32(&kmin[pv as usize], pu);
                    fetch_max_u32(&kmax[pu as usize], pv);
                    fetch_max_u32(&kmax[pv as usize], pu);
                }
            });
        }
        let tmin = bcc_primitives::RangeTable::build(pool, &key_min, bcc_primitives::Extremum::Min);
        let tmax = bcc_primitives::RangeTable::build(pool, &key_max, bcc_primitives::Extremum::Max);
        let esc = bcc_smp::SharedSlice::new(&mut escaped);
        pool.run(|ctx| {
            for v in ctx.block_range(n as usize) {
                let r = info.subtree_interval(v as u32);
                let lo = tmin.query(r.start, r.end);
                let hi = tmax.query(r.start, r.end);
                unsafe {
                    esc.write(v, (lo as usize) < r.start || (hi as usize) >= r.end);
                }
            }
        });
    }
    let bridges = (0..n).filter(|&v| v != 0 && !escaped[v as usize]).count() as u32;

    Ok(nontrivial + bridges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::sequential_impl as sequential;
    use bcc_graph::gen;
    use bcc_graph::GraphBuilder;

    #[test]
    fn exact_on_clean_families() {
        let pool = Pool::new(2);
        // Cycle: 1 block, no bridges.
        assert_eq!(double_bfs_upper_bound(&pool, &gen::cycle(20)).unwrap(), 1);
        // Path: every edge a bridge.
        assert_eq!(double_bfs_upper_bound(&pool, &gen::path(20)).unwrap(), 19);
        // Clique: 1.
        assert_eq!(
            double_bfs_upper_bound(&pool, &gen::complete(10)).unwrap(),
            1
        );
        // Chain of cycles: count cycles + bridges.
        assert_eq!(
            double_bfs_upper_bound(&pool, &gen::cycle_chain(4, 5, 0)).unwrap(),
            7
        );
    }

    #[test]
    fn always_an_upper_bound_on_sparse_random_graphs() {
        // At m = 2n, blocks are small and their nontree edges often
        // split in G − T: the corollary's count over-estimates (see the
        // theta-graph counterexample in tests/filter_invariants.rs).
        let pool = Pool::new(3);
        for seed in 0..20u64 {
            let g = gen::random_connected(120, 240, seed);
            let truth = sequential(&g).num_components;
            let bound = double_bfs_upper_bound(&pool, &g).unwrap();
            assert!(bound >= truth, "seed {seed}: bound {bound} < truth {truth}");
        }
    }

    #[test]
    fn usually_exact_on_the_papers_densities() {
        // The paper evaluates m >= 4n; there the double-BFS count is
        // almost always exact (measured: >= 90% of seeds).
        let pool = Pool::new(3);
        let mut exact = 0usize;
        let mut total = 0usize;
        for seed in 0..20u64 {
            let g = gen::random_connected(250, 1000, seed);
            let truth = sequential(&g).num_components;
            let bound = double_bfs_upper_bound(&pool, &g).unwrap();
            assert!(bound >= truth);
            total += 1;
            if bound == truth {
                exact += 1;
            }
        }
        assert!(exact * 10 >= total * 8, "only {exact}/{total} exact");
    }

    #[test]
    fn disconnected_rejected() {
        let pool = Pool::new(2);
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert!(double_bfs_upper_bound(&pool, &g).is_err());
    }

    #[test]
    fn empty_edge_set() {
        let pool = Pool::new(2);
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(double_bfs_upper_bound(&pool, &g).unwrap(), 0);
    }
}

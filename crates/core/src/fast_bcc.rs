//! FAST-BCC: skeleton-based, space-efficient biconnectivity (Dong,
//! Wang, Gu & Sun, "Provably Fast and Space-Efficient Parallel
//! Biconnectivity", adapted to this codebase's BFS + FastSV substrate).
//!
//! The TV pipelines all pay for Euler-tour machinery — tour arc arrays,
//! list ranking, and (for deep trees) an O(n log n) sparse table for
//! low/high — plus, in TV-filter's case, O(m) scratch to materialize
//! the candidate edge list. FAST-BCC keeps TV-filter's *certificate*
//! idea and deletes all of that machinery:
//!
//! 1. **Skeleton** — a BFS spanning tree T (the existing
//!    direction-optimizing BFS). Lemma 1 of the paper (§4) requires a
//!    BFS tree for certificate correctness, so this is unchanged.
//! 2. **Tags** — preorder, subtree size, and depth are computed
//!    *directly on the BFS tree* by level-synchronous sweeps
//!    ([`bcc_euler::bfs_tree_info_ws`]): a BFS tree's levels are
//!    depths, so sizes aggregate bottom-up and preorder numbers
//!    distribute top-down, one O(n)-work round per level. No tour, no
//!    ranking.
//! 3. **Certificate** — a spanning forest F of G − T found by running
//!    FastSV over the *full* edge list with tree edges masked out by an
//!    O(1) predicate ([`connected_components_masked_with_ws`]); the
//!    certificate T ∪ F (≤ 2(n−1) edges) replaces G for the tail. No
//!    compacted candidate copy, no id-remap table — the masked run
//!    reports original edge ids.
//! 4. **Tail** — the shared low/high → fused label-edge → FastSV tail
//!    on the certificate, with the low/high kernel pinned to the O(n)
//!    level sweep (the auto heuristic may pick the O(n log n) table on
//!    deep trees, which would break the space bound; the sweep's
//!    O(depth) rounds are the documented trade).
//! 5. **Placement** — every edge outside the certificate is a nontree
//!    edge of T, and aux-graph condition 1 links each nontree edge's
//!    larger-preorder endpoint x to that edge's aux vertex, so after
//!    connectivity `aux_label[x]` *is* its component: placement is O(1)
//!    per edge with zero O(m) scratch.
//!
//! Peak auxiliary space is therefore O(n): the BFS arrays, the tree
//! tags, the certificate, low/high, and the aux graph are all a few
//! words per vertex. The only O(m)-sized allocations are the ones every
//! pipeline shares — the CSR adjacency (input preparation) and the
//! result itself (one label per edge) — with zero O(m) scratch stacked
//! on top. This is what the `bcc-bench xl` tier measures at n = 10M+.

use crate::low_high::LowHighMethod;
use crate::phase::{PhaseRecorder, PipelineStats, Step};
use crate::pipeline::{finalize, trivial_result, tv_tail, BccError, BccResult};
use bcc_connectivity::bfs::bfs_tree_ws;
use bcc_connectivity::sv::connected_components_masked_with_ws;
use bcc_connectivity::tuning::TraversalTuning;
use bcc_connectivity::BfsDirection;
use bcc_euler::bfs_tree_info_ws;
use bcc_graph::{Csr, Edge, Graph};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};
use std::time::Instant;

/// The FAST-BCC pipeline on a connected graph (dispatched from
/// [`crate::pipeline::run_connected`] for [`crate::Algorithm::FastBcc`]).
pub(crate) fn fast_bcc_impl(
    pool: &Pool,
    g: &Graph,
    tuning: TraversalTuning,
    ws: &BccWorkspace,
    rec: &mut PhaseRecorder,
) -> Result<BccResult, BccError> {
    let start = Instant::now();
    let n = g.n();
    let m = g.m();
    if let Some(r) = trivial_result(g, start, rec.phases()) {
        return Ok(r);
    }

    // Adjacency conversion is shared input preparation (kept out of the
    // Spanning-tree step for the same reason as TV-filter).
    let csr = Csr::build_par(pool, g);

    // Step 1: BFS skeleton T.
    let root = 0u32;
    let mut bfs = rec.step(Step::SpanningTree, || {
        bfs_tree_ws(pool, &csr, root, &tuning, ws)
    });
    if bfs.reached != n {
        bfs.recycle(ws);
        return Err(BccError::Disconnected);
    }

    // Step 2 (Root-tree): tags straight off the BFS tree.
    let info = rec.step(Step::RootTree, || {
        bfs_tree_info_ws(pool, &bfs.parent, &bfs.level, root, ws)
    });

    // Step 3 (Filtering): certificate T ∪ F. F is a spanning forest of
    // G − T computed in place — `keep` masks T by an O(1) parent test,
    // so no candidate list or id remap is ever materialized. The test
    // is on the parent *pair*, not the edge id: a duplicate of a tree
    // edge connects its endpoints in G − T without adding any
    // connectivity beyond T, so letting it into F can displace a real
    // forest edge and break the certificate (the paper's lemma assumes
    // a simple graph). Masking every tree-parallel edge restores that
    // setting; the parallels are placed by the condition-1 rule below,
    // which gives each exactly its tree twin's label.
    let parent: &[u32] = &bfs.parent;
    let parent_eid: &[u32] = &bfs.parent_eid;
    let (cert_edges, cert_is_tree, forest_rounds) = rec.step(Step::Filtering, || {
        let edges = g.edges();
        let forest = connected_components_masked_with_ws(
            pool,
            n,
            edges,
            &|i| {
                let e = edges[i];
                parent[e.u as usize] != e.v && parent[e.v as usize] != e.u
            },
            tuning.sv,
            ws,
        );
        let mut cert_edges: Vec<Edge> = ws.take(2 * n as usize);
        let mut cert_is_tree: Vec<bool> = ws.take(2 * n as usize);
        for v in 0..n {
            let eid = parent_eid[v as usize];
            if eid != NIL {
                cert_edges.push(edges[eid as usize]);
                cert_is_tree.push(true);
            }
        }
        for &i in &forest.tree_edges {
            cert_edges.push(edges[i as usize]);
            cert_is_tree.push(false);
        }
        let forest_rounds = forest.rounds;
        forest.recycle(ws);
        (cert_edges, cert_is_tree, forest_rounds)
    });

    // Steps 4–6 on the certificate, low/high pinned to the level sweep.
    let tail = tv_tail(
        pool,
        n,
        &cert_edges,
        &cert_is_tree,
        &info,
        tuning,
        LowHighMethod::LevelSweep,
        ws,
        rec,
    );

    // Placement: tree edges take their child endpoint's aux label;
    // every other edge — certificate-F and filtered alike — takes its
    // larger-preorder endpoint's (condition 1 ties that aux vertex to
    // the edge's own). `comp` escapes as the result, so it is allocated
    // plain rather than from the workspace.
    let mut comp = vec![0u32; m];
    rec.step(Step::Filtering, || {
        let comp_s = SharedSlice::new(&mut comp);
        let aux: &[u32] = &tail.aux_vertex_labels;
        let pre = &info.preorder;
        pool.run(|ctx| {
            for i in ctx.block_range(m) {
                let e = g.edges()[i];
                let child = if parent_eid[e.u as usize] == i as u32 {
                    e.u
                } else if parent_eid[e.v as usize] == i as u32 {
                    e.v
                } else {
                    // Nontree: deeper (larger-preorder) endpoint.
                    if pre[e.u as usize] > pre[e.v as usize] {
                        e.u
                    } else {
                        e.v
                    }
                };
                unsafe { comp_s.write(i, aux[child as usize]) };
            }
        });
    });

    let stats = PipelineStats {
        input_edges: m,
        effective_edges: cert_edges.len(),
        filtered_edges: m - cert_edges.len(),
        aux_vertices: tail.aux_vertices,
        aux_edges: tail.aux_edges,
        sv_rounds_spanning: forest_rounds,
        sv_rounds_cc: tail.sv_rounds_cc,
        bfs_levels: bfs.levels,
        bfs_bottom_up_levels: bfs.bottom_up_levels(),
        bfs_directions: bfs
            .directions
            .iter()
            .map(|d| match d {
                BfsDirection::TopDown => 'T',
                BfsDirection::BottomUp => 'B',
            })
            .collect(),
        bfs_frontier_sizes: std::mem::take(&mut bfs.frontier_sizes),
    };
    info.recycle(ws);
    bfs.recycle(ws);
    ws.give(cert_edges);
    ws.give(cert_is_tree);
    // `tail.edge_labels` (per-certificate-edge labels) is superseded by
    // the placement pass; it is a plain allocation, so drop it.
    drop(tail.edge_labels);
    ws.give(tail.aux_vertex_labels);
    Ok(finalize(comp, rec.phases().clone(), stats, start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{sequential_impl, Algorithm, BccConfig};
    use bcc_graph::{gen, GraphBuilder};

    fn agree(g: &Graph, p: usize) {
        let pool = Pool::new(p);
        let base = sequential_impl(g);
        let r = BccConfig::new(Algorithm::FastBcc)
            .run(&pool, g)
            .unwrap()
            .result;
        assert_eq!(r.num_components, base.num_components, "count (p={p})");
        assert_eq!(r.edge_comp, base.edge_comp, "labels (p={p})");
    }

    #[test]
    fn families() {
        for p in [1, 2, 4] {
            agree(&gen::cycle(12), p);
            agree(&gen::path(12), p);
            agree(&gen::star(12), p);
            agree(&gen::complete(7), p);
            agree(&gen::torus(3, 5), p);
            agree(&gen::two_cliques_sharing_vertex(5), p);
            agree(&gen::cycle_chain(4, 5, 0), p);
            agree(&gen::random_tree(80, p as u64), p);
        }
    }

    #[test]
    fn random_graphs() {
        for seed in 0..6u64 {
            agree(&gen::random_connected(250, 600, seed), 1);
            agree(&gen::random_connected(250, 600, seed), 4);
        }
    }

    #[test]
    fn duplicate_edges_share_their_tree_twin_label() {
        // Parallel edges biconnect their endpoints; the duplicate is a
        // nontree edge placed via its deeper endpoint's aux label.
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (0, 1), (1, 2)])
            .build()
            .unwrap();
        agree(&g, 2);
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::FastBcc)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.edge_comp[0], r.edge_comp[1]);
        assert_ne!(r.edge_comp[0], r.edge_comp[2]);
    }

    #[test]
    fn certificate_is_sparse() {
        let n = 400u32;
        let g = gen::random_connected(n, 6_000, 3);
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::FastBcc)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.stats.input_edges, 6_000);
        assert!(r.stats.effective_edges <= 2 * (n as usize - 1));
        assert_eq!(
            r.stats.filtered_edges,
            r.stats.input_edges - r.stats.effective_edges
        );
        assert!(r.stats.bfs_levels >= 2);
    }

    #[test]
    fn workspace_steady_state() {
        use std::sync::Arc;
        let ws = Arc::new(BccWorkspace::new());
        let pool = Pool::new(2);
        let g = gen::random_connected(300, 900, 7);
        let cfg = BccConfig::new(Algorithm::FastBcc).workspace(Arc::clone(&ws));
        let first = cfg.run(&pool, &g).unwrap().result;
        let before = ws.stats();
        let again = cfg.run(&pool, &g).unwrap().result;
        assert_eq!(first.edge_comp, again.edge_comp);
        let delta = ws.stats().delta_since(&before);
        assert_eq!(delta.misses, 0, "steady-state rerun must not miss");
    }
}

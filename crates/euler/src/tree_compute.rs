//! Rooting and tree computations from Euler-tour positions.
//!
//! Once every arc knows its tour position, the tree structure falls out
//! of comparisons and prefix sums (paper step 3, *Root-tree*, and the
//! aggregations feeding step 4):
//!
//! * an arc is an **advance** (parent → child) iff it precedes its twin;
//! * `preorder(v)` = number of advance arcs up to and including v's
//!   advance arc (inclusive prefix sum of advance flags in tour order);
//! * `size(v)` = half the tour span between v's advance and retreat
//!   arcs, inclusive;
//! * `depth(v)` = advance-minus-retreat balance at v's advance arc.

use crate::tour::EulerTour;
use crate::twin;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::workspace::{alloc_cap, alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};
use std::sync::atomic::Ordering;

/// Rooted-tree data derived from an Euler tour.
#[derive(Clone, Debug)]
pub struct TreeInfo {
    /// The root the tour started at.
    pub root: u32,
    /// `parent[v]`; `parent[root] == root`.
    pub parent: Vec<u32>,
    /// Index into the tour's tree-edge list of v's parent edge (`NIL`
    /// for the root).
    pub parent_edge: Vec<u32>,
    /// Preorder number, `preorder[root] == 0`, a permutation of `0..n`.
    pub preorder: Vec<u32>,
    /// `vertex_at_preorder[q]` = the vertex with preorder number `q`.
    pub vertex_at_preorder: Vec<u32>,
    /// Subtree sizes (`size[root] == n`).
    pub size: Vec<u32>,
    /// Depth from the root (`depth[root] == 0`).
    pub depth: Vec<u32>,
}

impl TreeInfo {
    /// Half-open preorder interval `[pre(v), pre(v) + size(v))` covering
    /// exactly v's subtree.
    #[inline]
    pub fn subtree_interval(&self, v: u32) -> std::ops::Range<usize> {
        let lo = self.preorder[v as usize] as usize;
        lo..lo + self.size[v as usize] as usize
    }

    /// True if `a` is an ancestor of `d` (or equal): subtree containment
    /// via preorder intervals.
    #[inline]
    pub fn is_ancestor(&self, a: u32, d: u32) -> bool {
        let pa = self.preorder[a as usize];
        let pd = self.preorder[d as usize];
        pd >= pa && pd < pa + self.size[a as usize]
    }

    /// Returns every array to `ws` for reuse.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.parent);
        ws.give(self.parent_edge);
        ws.give(self.preorder);
        ws.give(self.vertex_at_preorder);
        ws.give(self.size);
        ws.give(self.depth);
    }
}

/// Derives rooting, preorder, subtree sizes, and depths from `tour`.
pub fn tree_computations(pool: &Pool, tour: &EulerTour, root: u32) -> TreeInfo {
    tree_computations_impl(pool, tour, root, None)
}

/// [`tree_computations`] with all scratch and the result arrays taken
/// from `ws`; return the result's arrays with [`TreeInfo::recycle`].
pub fn tree_computations_ws(
    pool: &Pool,
    tour: &EulerTour,
    root: u32,
    ws: &BccWorkspace,
) -> TreeInfo {
    tree_computations_impl(pool, tour, root, Some(ws))
}

fn tree_computations_impl(
    pool: &Pool,
    tour: &EulerTour,
    root: u32,
    ws: Option<&BccWorkspace>,
) -> TreeInfo {
    let n = tour.n as usize;
    let num_arcs = tour.num_arcs();
    let t = num_arcs / 2;

    if n == 1 {
        return TreeInfo {
            root,
            parent: vec![root],
            parent_edge: vec![NIL],
            preorder: vec![0],
            vertex_at_preorder: vec![root],
            size: vec![1],
            depth: vec![0],
        };
    }

    // Rooting: the earlier arc of each twin pair points parent → child.
    let mut parent = alloc_filled(ws, n, NIL);
    let mut parent_edge = alloc_filled(ws, n, NIL);
    let mut adv_arc = alloc_filled(ws, n, NIL); // v's advance arc
    {
        let par_s = SharedSlice::new(&mut parent);
        let pe_s = SharedSlice::new(&mut parent_edge);
        let aa_s = SharedSlice::new(&mut adv_arc);
        pool.run(|ctx| {
            for i in ctx.block_range(t) {
                let e = tour.edges[i];
                let fwd = 2 * i as u32; // u -> v
                let (adv, child, par) = if tour.pos[fwd as usize] < tour.pos[twin(fwd) as usize] {
                    (fwd, e.v, e.u)
                } else {
                    (twin(fwd), e.u, e.v)
                };
                // Each child vertex has exactly one advance arc (its
                // parent edge), so these writes are disjoint.
                unsafe {
                    par_s.write(child as usize, par);
                    pe_s.write(child as usize, i as u32);
                    aa_s.write(child as usize, adv);
                }
            }
            if ctx.is_leader() {
                unsafe { par_s.write(root as usize, root) };
            }
        });
    }

    // Advance flags in tour order, scanned inclusively: S[j] = number of
    // advance arcs at positions <= j.
    let mut adv_scan = alloc_filled(ws, num_arcs, 0u32);
    let mut depth_scan = alloc_filled(ws, num_arcs, 0i32);
    {
        let as_s = SharedSlice::new(&mut adv_scan);
        let ds_s = SharedSlice::new(&mut depth_scan);
        pool.run(|ctx| {
            for j in ctx.block_range(num_arcs) {
                let a = tour.order[j];
                let advance = tour.pos[a as usize] < tour.pos[twin(a) as usize];
                unsafe {
                    as_s.write(j, u32::from(advance));
                    ds_s.write(j, if advance { 1 } else { -1 });
                }
            }
        });
    }
    match ws {
        Some(ws) => {
            bcc_primitives::scan::inclusive_scan_par_ws(pool, &mut adv_scan, ws);
            bcc_primitives::scan::inclusive_scan_par_ws(pool, &mut depth_scan, ws);
        }
        None => {
            bcc_primitives::scan::inclusive_scan_par(pool, &mut adv_scan);
            bcc_primitives::scan::inclusive_scan_par(pool, &mut depth_scan);
        }
    }

    // Per-vertex quantities.
    let mut preorder = alloc_filled(ws, n, 0u32);
    let mut size = alloc_filled(ws, n, 0u32);
    let mut depth = alloc_filled(ws, n, 0u32);
    {
        let pre_s = SharedSlice::new(&mut preorder);
        let size_s = SharedSlice::new(&mut size);
        let dep_s = SharedSlice::new(&mut depth);
        let adv_arc_ro: &[u32] = &adv_arc;
        let adv_scan_ro: &[u32] = &adv_scan;
        let depth_scan_ro: &[i32] = &depth_scan;
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                if v as u32 == root {
                    unsafe {
                        pre_s.write(v, 0);
                        size_s.write(v, n as u32);
                        dep_s.write(v, 0);
                    }
                    continue;
                }
                let a = adv_arc_ro[v];
                debug_assert_ne!(a, NIL, "vertex {v} missing from tour");
                let pa = tour.pos[a as usize] as usize;
                let pr = tour.pos[twin(a) as usize] as usize;
                unsafe {
                    pre_s.write(v, adv_scan_ro[pa]);
                    size_s.write(v, (pr - pa).div_ceil(2) as u32);
                    dep_s.write(v, depth_scan_ro[pa] as u32);
                }
            }
        });
    }

    // Inverse preorder permutation.
    let mut vertex_at_preorder = alloc_filled(ws, n, 0u32);
    {
        let inv_s = SharedSlice::new(&mut vertex_at_preorder);
        let pre_ro: &[u32] = &preorder;
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                unsafe { inv_s.write(pre_ro[v] as usize, v as u32) };
            }
        });
    }

    give_opt(ws, adv_arc);
    give_opt(ws, adv_scan);
    give_opt(ws, depth_scan);

    TreeInfo {
        root,
        parent,
        parent_edge,
        preorder,
        vertex_at_preorder,
        size,
        depth,
    }
}

/// Derives the same [`TreeInfo`] directly from a **BFS** tree's
/// `parent`/`level` arrays — no Euler tour, no list ranking (the
/// FAST-BCC skeleton path).
///
/// A BFS tree's levels *are* depths (every parent sits exactly one
/// level up), which makes every tree computation level-synchronous:
/// vertices are counting-sorted by level, subtree sizes aggregate
/// bottom-up one level per round, and preorder numbers distribute
/// top-down one level per round. Auxiliary space is O(n) — one
/// children-CSR plus the level buckets — versus the tour path's arc
/// arrays and ranking scratch; rounds are O(tree depth), which is
/// O(graph diameter) for a BFS tree.
///
/// Preconditions: `parent[root] == root`, every vertex is reached
/// (`parent[v] != NIL`), and `level[v]` is v's BFS depth. Sibling
/// order (hence the exact preorder permutation) is unspecified but
/// valid; all consumers ([`TreeInfo::is_ancestor`], low/high, the
/// aux-graph conditions) depend only on preorder/size consistency.
/// `parent_edge` is filled with `NIL` — the tail kernels never read
/// it, and the skeleton path has no per-tree-edge numbering.
pub fn bfs_tree_info(pool: &Pool, parent: &[u32], level: &[u32], root: u32) -> TreeInfo {
    bfs_tree_info_impl(pool, parent, level, root, None)
}

/// [`bfs_tree_info`] with all scratch and the result arrays taken from
/// `ws`; return the result's arrays with [`TreeInfo::recycle`].
pub fn bfs_tree_info_ws(
    pool: &Pool,
    parent: &[u32],
    level: &[u32],
    root: u32,
    ws: &BccWorkspace,
) -> TreeInfo {
    bfs_tree_info_impl(pool, parent, level, root, Some(ws))
}

fn bfs_tree_info_impl(
    pool: &Pool,
    parent: &[u32],
    level: &[u32],
    root: u32,
    ws: Option<&BccWorkspace>,
) -> TreeInfo {
    let n = parent.len();
    debug_assert_eq!(level.len(), n);
    debug_assert_eq!(parent[root as usize], root);

    if n == 1 {
        return TreeInfo {
            root,
            parent: vec![root],
            parent_edge: vec![NIL],
            preorder: vec![0],
            vertex_at_preorder: vec![root],
            size: vec![1],
            depth: vec![0],
        };
    }

    // Owned copies of the inputs (TreeInfo owns its arrays) plus the
    // inert parent_edge.
    let mut parent_c = alloc_filled(ws, n, 0u32);
    let mut depth = alloc_filled(ws, n, 0u32);
    let parent_edge = alloc_filled(ws, n, NIL);
    {
        let par_s = SharedSlice::new(&mut parent_c);
        let dep_s = SharedSlice::new(&mut depth);
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                unsafe {
                    par_s.write(v, parent[v]);
                    dep_s.write(v, level[v]);
                }
            }
        });
    }

    // Bucket vertices by level (counting sort, the low/high sweep's
    // idiom) so each level is a contiguous slice.
    let max_depth = level.iter().copied().max().unwrap_or(0) as usize;
    let mut bucket_of = alloc_filled(ws, max_depth + 2, 0u32);
    for &d in level {
        bucket_of[d as usize + 1] += 1;
    }
    for d in 0..=max_depth {
        bucket_of[d + 1] += bucket_of[d];
    }
    let mut by_level = alloc_filled(ws, n, 0u32);
    {
        let mut cursor: Vec<u32> = alloc_cap(ws, bucket_of.len());
        cursor.extend_from_slice(&bucket_of);
        for v in 0..n as u32 {
            let d = level[v as usize] as usize;
            by_level[cursor[d] as usize] = v;
            cursor[d] += 1;
        }
        give_opt(ws, cursor);
    }

    // Children CSR: counts by atomic increment, offsets by scan, then a
    // racy scatter (sibling order is whatever the scatter produced —
    // any order yields a valid preorder).
    let mut child_off = alloc_filled(ws, n + 1, 0u32);
    {
        let cnt = as_atomic_u32(&mut child_off[1..]);
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                if v as u32 != root {
                    cnt[parent[v] as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    match ws {
        Some(ws) => bcc_primitives::scan::inclusive_scan_par_ws(pool, &mut child_off, ws),
        None => bcc_primitives::scan::inclusive_scan_par(pool, &mut child_off),
    }
    let mut children = alloc_filled(ws, n - 1, 0u32);
    {
        let mut cursor: Vec<u32> = alloc_cap(ws, n);
        cursor.extend_from_slice(&child_off[..n]);
        let cur = as_atomic_u32(&mut cursor);
        let ch_s = SharedSlice::new(&mut children);
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                if v as u32 != root {
                    let slot = cur[parent[v] as usize].fetch_add(1, Ordering::Relaxed);
                    unsafe { ch_s.write(slot as usize, v as u32) };
                }
            }
        });
        give_opt(ws, cursor);
    }

    // Subtree sizes bottom-up: one parallel round per level, deepest
    // first. A vertex at level d reads only children (level d + 1),
    // already final — no atomics.
    let mut size = alloc_filled(ws, n, 1u32);
    {
        let size_s = SharedSlice::new(&mut size);
        let children_ro: &[u32] = &children;
        let off_ro: &[u32] = &child_off;
        for d in (0..max_depth).rev() {
            let lvl = &by_level[bucket_of[d] as usize..bucket_of[d + 1] as usize];
            pool.run(|ctx| {
                for k in ctx.block_range(lvl.len()) {
                    let v = lvl[k] as usize;
                    let mut s = 1u32;
                    for &c in &children_ro[off_ro[v] as usize..off_ro[v + 1] as usize] {
                        s += size_s.get(c as usize);
                    }
                    unsafe { size_s.write(v, s) };
                }
            });
        }
    }
    debug_assert_eq!(size[root as usize] as usize, n);

    // Preorder top-down: each vertex hands its children disjoint
    // subranges of its own interval (serial per parent; parents of one
    // level run in parallel).
    let mut preorder = alloc_filled(ws, n, 0u32);
    {
        let pre_s = SharedSlice::new(&mut preorder);
        let children_ro: &[u32] = &children;
        let off_ro: &[u32] = &child_off;
        let size_ro: &[u32] = &size;
        for d in 0..max_depth {
            let lvl = &by_level[bucket_of[d] as usize..bucket_of[d + 1] as usize];
            pool.run(|ctx| {
                for k in ctx.block_range(lvl.len()) {
                    let v = lvl[k] as usize;
                    let mut cursor = pre_s.get(v) + 1;
                    for &c in &children_ro[off_ro[v] as usize..off_ro[v + 1] as usize] {
                        unsafe { pre_s.write(c as usize, cursor) };
                        cursor += size_ro[c as usize];
                    }
                }
            });
        }
    }

    // Inverse preorder permutation.
    let mut vertex_at_preorder = alloc_filled(ws, n, 0u32);
    {
        let inv_s = SharedSlice::new(&mut vertex_at_preorder);
        let pre_ro: &[u32] = &preorder;
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                unsafe { inv_s.write(pre_ro[v] as usize, v as u32) };
            }
        });
    }

    give_opt(ws, bucket_of);
    give_opt(ws, by_level);
    give_opt(ws, child_off);
    give_opt(ws, children);

    TreeInfo {
        root,
        parent: parent_c,
        parent_edge,
        preorder,
        vertex_at_preorder,
        size,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::{euler_tour_classic, Ranker};
    use bcc_graph::{gen, Csr, Edge, GraphBuilder};

    /// Sequential DFS oracle for preorder/size/depth given a rooted tree.
    fn oracle(n: u32, edges: &[Edge], root: u32) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let g = GraphBuilder::new(n).edges(edges.to_vec()).build().unwrap();
        let csr = Csr::build(&g);
        let n = n as usize;
        let mut parent = vec![NIL; n];
        let mut pre = vec![0u32; n];
        let mut size = vec![1u32; n];
        let mut depth = vec![0u32; n];
        parent[root as usize] = root;
        // DFS that mirrors the tour's child order is unnecessary: only
        // *relative structure* (parent, sizes, depth) is compared;
        // preorder is checked for permutation + ancestry consistency.
        let mut order = vec![];
        let mut stack = vec![root];
        let mut counter = 0u32;
        while let Some(v) = stack.pop() {
            pre[v as usize] = counter;
            counter += 1;
            order.push(v);
            for &w in csr.neighbors(v) {
                if parent[w as usize] == NIL && w != root {
                    parent[w as usize] = v;
                    depth[w as usize] = depth[v as usize] + 1;
                    stack.push(w);
                }
            }
        }
        for &v in order.iter().rev() {
            if v != root {
                let p = parent[v as usize];
                size[p as usize] += size[v as usize];
            }
        }
        (parent, pre, size, depth)
    }

    fn check_tree(n: u32, edges: Vec<Edge>, root: u32, p: usize) {
        let pool = Pool::new(p);
        let tour = euler_tour_classic(&pool, n, edges.clone(), root, Ranker::HelmanJaja);
        let info = tree_computations(&pool, &tour, root);
        let (oparent, _opre, osize, odepth) = oracle(n, &edges, root);

        assert_eq!(info.parent, oparent, "parents (n={n} root={root})");
        assert_eq!(info.size, osize, "sizes");
        assert_eq!(info.depth, odepth, "depths");

        // Preorder is a permutation with root first.
        let mut sorted = info.preorder.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &x)| x == i as u32));
        assert_eq!(info.preorder[root as usize], 0);

        // Preorder/size ancestry: child interval nested in parent's.
        for v in 0..n {
            if v != root {
                let pv = info.parent[v as usize];
                assert!(info.is_ancestor(pv, v));
                assert!(!info.is_ancestor(v, pv));
                let ci = info.subtree_interval(v);
                let pi = info.subtree_interval(pv);
                assert!(pi.start <= ci.start && ci.end <= pi.end);
            }
        }

        // Inverse permutation consistent.
        for v in 0..n {
            assert_eq!(
                info.vertex_at_preorder[info.preorder[v as usize] as usize],
                v
            );
        }

        // parent_edge indexes the correct tree edge.
        for v in 0..n {
            if v == root {
                assert_eq!(info.parent_edge[v as usize], NIL);
            } else {
                let e = edges[info.parent_edge[v as usize] as usize];
                let p = info.parent[v as usize];
                assert!((e.u == v && e.v == p) || (e.v == v && e.u == p));
            }
        }
    }

    #[test]
    fn path_tree() {
        check_tree(10, gen::path(10).into_edges(), 0, 2);
        check_tree(10, gen::path(10).into_edges(), 9, 2);
        check_tree(10, gen::path(10).into_edges(), 4, 3);
    }

    #[test]
    fn star_and_binary_trees() {
        check_tree(20, gen::star(20).into_edges(), 0, 2);
        check_tree(20, gen::star(20).into_edges(), 11, 4);
        check_tree(31, gen::binary_tree(31).into_edges(), 0, 3);
    }

    #[test]
    fn random_trees_various_roots_and_threads() {
        for seed in 0..3u64 {
            let g = gen::random_tree(300, seed);
            for p in [1, 4] {
                for root in [0u32, 150, 299] {
                    check_tree(300, g.edges().to_vec(), root, p);
                }
            }
        }
    }

    #[test]
    fn singleton() {
        let pool = Pool::new(2);
        let tour = euler_tour_classic(&pool, 1, vec![], 0, Ranker::Sequential);
        let info = tree_computations(&pool, &tour, 0);
        assert_eq!(info.preorder, vec![0]);
        assert_eq!(info.size, vec![1]);
        assert_eq!(info.parent, vec![0]);
    }

    #[test]
    fn two_vertices() {
        check_tree(2, vec![Edge::new(0, 1)], 0, 1);
        check_tree(2, vec![Edge::new(0, 1)], 1, 2);
    }

    /// Oracle for the BFS-skeleton path: recompute sizes/depths
    /// sequentially from the parent array itself.
    fn check_bfs_info(n: u32, edges: Vec<Edge>, root: u32, p: usize) {
        use bcc_connectivity::bfs::bfs_tree_seq;
        let g = GraphBuilder::new(n).edges(edges).build().unwrap();
        let csr = Csr::build(&g);
        let bfs = bfs_tree_seq(&csr, root);
        assert_eq!(bfs.reached, n, "test graphs must be connected");

        let pool = Pool::new(p);
        let info = bfs_tree_info(&pool, &bfs.parent, &bfs.level, root);
        let ws = bcc_smp::BccWorkspace::default();
        let info_ws = bfs_tree_info_ws(&pool, &bfs.parent, &bfs.level, root, &ws);

        let n = n as usize;
        assert_eq!(info.parent, bfs.parent);
        assert_eq!(info.depth, bfs.level);
        assert_eq!(info.parent_edge, vec![NIL; n]);

        // Sequential size oracle from the parent array (children
        // counted by repeated parent-chasing is O(n^2); instead
        // accumulate leaf-up by sorting on depth).
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(bfs.level[v as usize]));
        let mut osize = vec![1u32; n];
        for &v in &order {
            if v != root {
                osize[bfs.parent[v as usize] as usize] += osize[v as usize];
            }
        }
        assert_eq!(info.size, osize, "sizes");

        // Preorder is a permutation with root first; subtree intervals
        // nest; inverse permutation consistent.
        let mut sorted = info.preorder.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &x)| x == i as u32));
        assert_eq!(info.preorder[root as usize], 0);
        for v in 0..n as u32 {
            if v != root {
                let pv = info.parent[v as usize];
                assert!(info.is_ancestor(pv, v));
                assert!(!info.is_ancestor(v, pv));
                let ci = info.subtree_interval(v);
                let pi = info.subtree_interval(pv);
                assert!(pi.start <= ci.start && ci.end <= pi.end);
            }
            assert_eq!(
                info.vertex_at_preorder[info.preorder[v as usize] as usize],
                v
            );
        }

        // The ws-backed variant agrees on everything deterministic.
        assert_eq!(info_ws.parent, info.parent);
        assert_eq!(info_ws.depth, info.depth);
        assert_eq!(info_ws.size, info.size);
        info_ws.recycle(&ws);
    }

    #[test]
    fn bfs_info_paths_stars_trees() {
        check_bfs_info(10, gen::path(10).into_edges(), 0, 2);
        check_bfs_info(10, gen::path(10).into_edges(), 9, 1);
        check_bfs_info(20, gen::star(20).into_edges(), 0, 2);
        check_bfs_info(20, gen::star(20).into_edges(), 7, 3);
        check_bfs_info(31, gen::binary_tree(31).into_edges(), 0, 2);
    }

    #[test]
    fn bfs_info_random_trees_and_graphs() {
        for seed in 0..3u64 {
            let t = gen::random_tree(300, seed);
            for p in [1, 4] {
                for root in [0u32, 150, 299] {
                    check_bfs_info(300, t.edges().to_vec(), root, p);
                }
            }
            // Connected non-tree graph: BFS picks a subset of edges.
            let g = gen::geometric(200, 6.0, 8, seed);
            check_bfs_info(g.n(), g.edges().to_vec(), 0, 2);
        }
    }

    #[test]
    fn bfs_info_singleton() {
        let pool = Pool::new(1);
        let info = bfs_tree_info(&pool, &[0], &[0], 0);
        assert_eq!(info.preorder, vec![0]);
        assert_eq!(info.size, vec![1]);
        assert_eq!(info.parent, vec![0]);
        assert_eq!(info.parent_edge, vec![NIL]);
    }

    /// The BFS-skeleton tags must agree with the Euler-tour tags when
    /// both are given the *same* tree (sizes and depths are
    /// tree-determined; preorders may differ only in sibling order).
    #[test]
    fn bfs_info_matches_tour_tags_on_trees() {
        use bcc_connectivity::bfs::bfs_tree_seq;
        for seed in 0..3u64 {
            let t = gen::random_tree(200, seed);
            let pool = Pool::new(2);
            let csr = Csr::build(&t);
            let bfs = bfs_tree_seq(&csr, 0);
            let info_bfs = bfs_tree_info(&pool, &bfs.parent, &bfs.level, 0);
            let tour = euler_tour_classic(&pool, 200, t.edges().to_vec(), 0, Ranker::HelmanJaja);
            let info_tour = tree_computations(&pool, &tour, 0);
            // On a tree the BFS tree IS the tree, so everything
            // tree-determined must match exactly.
            assert_eq!(info_bfs.parent, info_tour.parent);
            assert_eq!(info_bfs.size, info_tour.size);
            assert_eq!(info_bfs.depth, info_tour.depth);
        }
    }
}

//! Classic Euler-tour construction (sort + cross pointers + list rank).
//!
//! This is the construction TV-SMP pays for (paper §3.1): the spanning
//! tree arrives as a bare edge set, so a circular adjacency list with
//! cross pointers must be built on the fly. We sort the 2(n−1) arcs by
//! `(source, dest)` with the parallel sample sort, link each arc to the
//! next arc around its source (circularly), and set the tour successor
//! `succ[a] = next_around(twin(a))`. Ranking the successor list yields
//! each arc's position in the tour.
//!
//! (The paper additionally sorts by `(min, max)` to pair anti-parallel
//! arcs; our arc layout makes twins adjacent by construction — arc
//! `2i`/`2i+1` — so that sort is unnecessary. EXPERIMENTS.md notes this
//! deviation.)

use crate::twin;
use bcc_graph::Edge;
use bcc_primitives::{
    list_rank_hj, list_rank_hj_ws, list_rank_seq, list_rank_seq_ws, list_rank_wyllie,
    list_rank_wyllie_ws, par_radix_sort_u64, par_radix_sort_u64_ws, par_sample_sort_by_key,
};
use bcc_smp::workspace::{alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};

/// Which list-ranking algorithm positions the tour.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Ranker {
    /// Sequential walk (baseline).
    Sequential,
    /// Wyllie pointer jumping, O(n log n) work — the PRAM emulation.
    Wyllie,
    /// Helman–JáJá sampled sublists, O(n) work.
    HelmanJaja,
}

/// An Euler tour of a tree given as an edge list.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// Number of tree vertices.
    pub n: u32,
    /// The tree edges; arc `2i`/`2i+1` belong to `edges[i]`.
    pub edges: Vec<Edge>,
    /// `pos[a]` = position of arc `a` in the tour, `0..2(n-1)`.
    pub pos: Vec<u32>,
    /// The arc at each tour position (inverse of `pos`).
    pub order: Vec<u32>,
}

impl EulerTour {
    /// Number of arcs (2 × edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.pos.len()
    }

    /// Source vertex of arc `a`.
    #[inline]
    pub fn arc_src(&self, a: u32) -> u32 {
        let e = self.edges[(a / 2) as usize];
        if a & 1 == 0 {
            e.u
        } else {
            e.v
        }
    }

    /// Destination vertex of arc `a`.
    #[inline]
    pub fn arc_dst(&self, a: u32) -> u32 {
        self.arc_src(twin(a))
    }

    /// Returns the tour's buffers (edges, pos, order) to `ws` for
    /// reuse once the tour is no longer needed.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.edges);
        ws.give(self.pos);
        ws.give(self.order);
    }
}

/// Builds the Euler tour of the tree `edges` on vertices `0..n`, started
/// at `root` (the tour begins with an arc out of `root`).
///
/// `edges` must form a spanning tree of `0..n` (exactly `n - 1` edges,
/// connected, acyclic) with `n >= 1`; for `n == 1` the tour is empty.
pub fn euler_tour_classic(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    root: u32,
    ranker: Ranker,
) -> EulerTour {
    euler_tour_classic_impl(pool, n, edges, root, ranker, None)
}

/// [`euler_tour_classic`] with every internal buffer (and the tour's
/// own arrays) drawn from `ws`; return the tour's buffers with
/// [`EulerTour::recycle`].
pub fn euler_tour_classic_ws(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    root: u32,
    ranker: Ranker,
    ws: &BccWorkspace,
) -> EulerTour {
    euler_tour_classic_impl(pool, n, edges, root, ranker, Some(ws))
}

fn euler_tour_classic_impl(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    root: u32,
    ranker: Ranker,
    ws: Option<&BccWorkspace>,
) -> EulerTour {
    assert!(n >= 1);
    assert!(root < n);
    assert_eq!(
        edges.len() as u32 + 1,
        n,
        "a tree on {n} vertices has n-1 edges"
    );
    let t = edges.len();
    let num_arcs = 2 * t;
    if t == 0 {
        return EulerTour {
            n,
            edges,
            pos: vec![],
            order: vec![],
        };
    }

    // Sort arcs by source to form the circular adjacency list, as
    // packed `(source << 32) | arc` keys. The fast path is the LSD
    // radix sort — arc ids fit the low key half whenever `num_arcs`
    // fits `u32`, which holds for every representable input; the
    // original sample sort on `(source, dest)` pairs is kept as the
    // fallback past that packing range. Any within-source circular
    // order yields a valid Euler tour, so the two key layouts are
    // interchangeable downstream.
    let keys: Vec<u64> = if num_arcs <= u32::MAX as usize {
        pack_adjacency_radix(pool, &edges, ws)
    } else {
        pack_adjacency_sample(pool, &edges)
    };

    tour_from_keys(pool, n, edges, root, ranker, keys, ws)
}

/// Builds the sorted circular-adjacency keys `(src << 32) | arc` with
/// the parallel radix sort (the fast path).
fn pack_adjacency_radix(pool: &Pool, edges: &[Edge], ws: Option<&BccWorkspace>) -> Vec<u64> {
    let num_arcs = 2 * edges.len();
    let mut keys: Vec<u64> = alloc_filled(ws, num_arcs, 0);
    {
        let keys_s = SharedSlice::new(&mut keys);
        pool.run(|ctx| {
            for i in ctx.block_range(edges.len()) {
                let e = edges[i];
                let a = 2 * i as u64;
                unsafe {
                    keys_s.write(2 * i, ((e.u as u64) << 32) | a);
                    keys_s.write(2 * i + 1, ((e.v as u64) << 32) | (a + 1));
                }
            }
        });
    }
    match ws {
        Some(ws) => par_radix_sort_u64_ws(pool, &mut keys, ws),
        None => par_radix_sort_u64(pool, &mut keys),
    }
    keys
}

/// Builds the sorted circular-adjacency keys via the sample sort on
/// `(source, dest)` pairs carrying the arc id — the fallback when arc
/// ids cannot be packed into the low key half (and the construction
/// the TV-SMP ablation used before the radix path).
fn pack_adjacency_sample(pool: &Pool, edges: &[Edge]) -> Vec<u64> {
    let num_arcs = 2 * edges.len();
    let arc_src = |a: u32| -> u32 {
        let e = edges[(a / 2) as usize];
        if a & 1 == 0 {
            e.u
        } else {
            e.v
        }
    };
    let arc_dst = |a: u32| arc_src(twin(a));
    let mut arcs: Vec<(u64, u32)> = (0..num_arcs as u32)
        .map(|a| (((arc_src(a) as u64) << 32) | arc_dst(a) as u64, a))
        .collect();
    par_sample_sort_by_key(pool, &mut arcs, |&(k, _)| k);
    // Re-pack into the uniform (src << 32) | arc layout.
    arcs.iter()
        .map(|&(k, a)| (k & 0xFFFF_FFFF_0000_0000) | a as u64)
        .collect()
}

/// Everything after the adjacency sort: circular next-pointers, tour
/// successors, circuit break at `root`, list ranking, inverse
/// permutation. `keys[j] = (src << 32) | arc` sorted ascending.
fn tour_from_keys(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    root: u32,
    ranker: Ranker,
    keys: Vec<u64>,
    ws: Option<&BccWorkspace>,
) -> EulerTour {
    let num_arcs = keys.len();

    // next_around: successor within the source's circular arc list.
    // Position j links to j+1 unless j+1 starts a new source group, in
    // which case it wraps to its own group's start.
    let mut next_around = alloc_filled(ws, num_arcs, NIL);
    {
        // group_start[j] = index of the first position of j's group —
        // computable per position by binary search on the packed key's
        // source half, so the loop parallelizes without a stitch.
        let na = SharedSlice::new(&mut next_around);
        let keys_ro: &[u64] = &keys;
        pool.run(|ctx| {
            for j in ctx.block_range(num_arcs) {
                let src = keys_ro[j] >> 32;
                let next = if j + 1 < num_arcs && (keys_ro[j + 1] >> 32) == src {
                    keys_ro[j + 1] as u32
                } else {
                    // Wrap to the first arc of this source group.
                    let g = keys_ro.partition_point(|&k| (k >> 32) < src);
                    keys_ro[g] as u32
                };
                unsafe { na.write(keys_ro[j] as u32 as usize, next) };
            }
        });
    }

    // Tour successor: succ[a] = next arc around dst(a) after twin(a).
    let mut succ = alloc_filled(ws, num_arcs, NIL);
    {
        let succ_s = SharedSlice::new(&mut succ);
        let na: &[u32] = &next_around;
        pool.run(|ctx| {
            for a in ctx.block_range(num_arcs) {
                unsafe { succ_s.write(a, na[twin(a as u32) as usize]) };
            }
        });
    }

    // Break the circuit at the first arc out of `root` in sorted order.
    let start = {
        // Binary search the sorted keys for the first arc with src=root.
        let lo = keys.partition_point(|&k| (k >> 32) < root as u64);
        assert!(
            lo < num_arcs && (keys[lo] >> 32) == root as u64,
            "root {root} has no incident tree edge"
        );
        keys[lo] as u32
    };
    // The arc whose successor is `start`: its twin is the arc circularly
    // before `start` in root's adjacency group — equivalently the unique
    // b with next_around[b] == start; then pred = twin(b). Find b by
    // scanning root's group (average O(degree)).
    {
        let mut b = start;
        while next_around[b as usize] != start {
            b = next_around[b as usize];
        }
        succ[twin(b) as usize] = NIL;
    }

    // Rank the successor list.
    let pos = match (ranker, ws) {
        (Ranker::Sequential, None) => list_rank_seq(&succ, start),
        (Ranker::Sequential, Some(ws)) => list_rank_seq_ws(&succ, start, ws),
        (Ranker::Wyllie, None) => list_rank_wyllie(pool, &succ, start),
        (Ranker::Wyllie, Some(ws)) => list_rank_wyllie_ws(pool, &succ, start, ws),
        (Ranker::HelmanJaja, None) => list_rank_hj(pool, &succ, start),
        (Ranker::HelmanJaja, Some(ws)) => list_rank_hj_ws(pool, &succ, start, ws),
    };

    // Inverse permutation.
    let mut order = alloc_filled(ws, num_arcs, NIL);
    {
        let order_s = SharedSlice::new(&mut order);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for a in ctx.block_range(num_arcs) {
                unsafe { order_s.write(pos_ro[a] as usize, a as u32) };
            }
        });
    }

    give_opt(ws, keys);
    give_opt(ws, next_around);
    give_opt(ws, succ);

    EulerTour {
        n,
        edges,
        pos,
        order,
    }
}

/// Checks the Euler-tour invariants (used by tests and debug builds):
/// consecutive arcs are head-to-tail, the tour starts and ends at
/// `root`, and every arc appears exactly once.
pub fn assert_valid_tour(tour: &EulerTour, root: u32) {
    let num_arcs = tour.num_arcs();
    if num_arcs == 0 {
        return;
    }
    assert_eq!(tour.order.len(), num_arcs);
    let mut seen = vec![false; num_arcs];
    for j in 0..num_arcs {
        let a = tour.order[j];
        assert!(!seen[a as usize], "arc {a} appears twice");
        seen[a as usize] = true;
        assert_eq!(tour.pos[a as usize] as usize, j, "pos/order mismatch");
        if j + 1 < num_arcs {
            assert_eq!(
                tour.arc_dst(a),
                tour.arc_src(tour.order[j + 1]),
                "tour not contiguous at position {j}"
            );
        }
    }
    assert_eq!(tour.arc_src(tour.order[0]), root, "tour must start at root");
    assert_eq!(
        tour.arc_dst(tour.order[num_arcs - 1]),
        root,
        "tour must end at root"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;

    fn tree_edges(g: &bcc_graph::Graph) -> Vec<Edge> {
        g.edges().to_vec()
    }

    #[test]
    fn single_vertex_tree() {
        let pool = Pool::new(2);
        let tour = euler_tour_classic(&pool, 1, vec![], 0, Ranker::Sequential);
        assert_eq!(tour.num_arcs(), 0);
        assert_valid_tour(&tour, 0);
    }

    #[test]
    fn single_edge_tree() {
        let pool = Pool::new(2);
        let tour = euler_tour_classic(&pool, 2, vec![Edge::new(0, 1)], 0, Ranker::Sequential);
        assert_eq!(tour.num_arcs(), 2);
        assert_valid_tour(&tour, 0);
        // Arc (0→1) then (1→0).
        assert_eq!(tour.order, vec![0, 1]);
    }

    #[test]
    fn path_tree_all_rankers_agree() {
        let pool = Pool::new(4);
        let g = gen::path(50);
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::HelmanJaja] {
            let tour = euler_tour_classic(&pool, 50, tree_edges(&g), 0, ranker);
            assert_valid_tour(&tour, 0);
        }
    }

    #[test]
    fn random_trees_valid_tours_any_root() {
        for seed in 0..4u64 {
            let g = gen::random_tree(200, seed);
            for p in [1, 3] {
                let pool = Pool::new(p);
                for root in [0u32, 7, 199] {
                    let tour =
                        euler_tour_classic(&pool, 200, tree_edges(&g), root, Ranker::HelmanJaja);
                    assert_valid_tour(&tour, root);
                }
            }
        }
    }

    #[test]
    fn star_tree_tour() {
        let pool = Pool::new(2);
        let g = gen::star(30);
        // Root at the hub and at a leaf.
        for root in [0u32, 5] {
            let tour = euler_tour_classic(&pool, 30, tree_edges(&g), root, Ranker::Wyllie);
            assert_valid_tour(&tour, root);
        }
    }

    #[test]
    fn large_tree_parallel_rankers_match_sequential_positions() {
        let g = gen::random_tree(3000, 99);
        let pool1 = Pool::new(1);
        let seq = euler_tour_classic(&pool1, 3000, tree_edges(&g), 0, Ranker::Sequential);
        let pool = Pool::new(4);
        let wy = euler_tour_classic(&pool, 3000, tree_edges(&g), 0, Ranker::Wyllie);
        let hj = euler_tour_classic(&pool, 3000, tree_edges(&g), 0, Ranker::HelmanJaja);
        // The tour structure (succ list) is identical, so positions are too.
        assert_eq!(seq.pos, wy.pos);
        assert_eq!(seq.pos, hj.pos);
    }

    #[test]
    fn sample_sort_fallback_produces_valid_tours() {
        // Drive the fallback key construction directly (it is only
        // reachable organically past the u32 arc-packing range).
        for seed in 0..3u64 {
            let g = gen::random_tree(500, seed);
            for p in [1, 4] {
                let pool = Pool::new(p);
                let keys = pack_adjacency_sample(&pool, g.edges());
                let tour = tour_from_keys(
                    &pool,
                    g.n(),
                    tree_edges(&g),
                    3,
                    Ranker::HelmanJaja,
                    keys,
                    None,
                );
                assert_valid_tour(&tour, 3);
            }
        }
    }

    #[test]
    fn ws_construction_matches_plain_and_hits_on_rerun() {
        let g = gen::random_tree(800, 11);
        let pool = Pool::new(4);
        let ws = bcc_smp::BccWorkspace::new();
        let plain = euler_tour_classic(&pool, g.n(), tree_edges(&g), 0, Ranker::HelmanJaja);
        for _ in 0..2 {
            let tour =
                euler_tour_classic_ws(&pool, g.n(), tree_edges(&g), 0, Ranker::HelmanJaja, &ws);
            assert_valid_tour(&tour, 0);
            assert_eq!(tour.pos, plain.pos, "ws must not change the tour");
            tour.recycle(&ws);
        }
        let s0 = ws.stats();
        let tour = euler_tour_classic_ws(&pool, g.n(), tree_edges(&g), 0, Ranker::HelmanJaja, &ws);
        tour.recycle(&ws);
        assert_eq!(
            ws.stats().delta_since(&s0).misses,
            0,
            "steady-state tour construction must not allocate"
        );
    }

    #[test]
    #[should_panic]
    fn wrong_edge_count_rejected() {
        let pool = Pool::new(1);
        let _ = euler_tour_classic(&pool, 3, vec![Edge::new(0, 1)], 0, Ranker::Sequential);
    }
}

//! Classic Euler-tour construction (sort + cross pointers + list rank).
//!
//! This is the construction TV-SMP pays for (paper §3.1): the spanning
//! tree arrives as a bare edge set, so a circular adjacency list with
//! cross pointers must be built on the fly. We sort the 2(n−1) arcs by
//! `(source, dest)` with the parallel sample sort, link each arc to the
//! next arc around its source (circularly), and set the tour successor
//! `succ[a] = next_around(twin(a))`. Ranking the successor list yields
//! each arc's position in the tour.
//!
//! (The paper additionally sorts by `(min, max)` to pair anti-parallel
//! arcs; our arc layout makes twins adjacent by construction — arc
//! `2i`/`2i+1` — so that sort is unnecessary. EXPERIMENTS.md notes this
//! deviation.)

use crate::twin;
use bcc_graph::Edge;
use bcc_primitives::{list_rank_hj, list_rank_seq, list_rank_wyllie, par_sample_sort_by_key};
use bcc_smp::{Pool, SharedSlice, NIL};

/// Which list-ranking algorithm positions the tour.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Ranker {
    /// Sequential walk (baseline).
    Sequential,
    /// Wyllie pointer jumping, O(n log n) work — the PRAM emulation.
    Wyllie,
    /// Helman–JáJá sampled sublists, O(n) work.
    HelmanJaja,
}

/// An Euler tour of a tree given as an edge list.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// Number of tree vertices.
    pub n: u32,
    /// The tree edges; arc `2i`/`2i+1` belong to `edges[i]`.
    pub edges: Vec<Edge>,
    /// `pos[a]` = position of arc `a` in the tour, `0..2(n-1)`.
    pub pos: Vec<u32>,
    /// The arc at each tour position (inverse of `pos`).
    pub order: Vec<u32>,
}

impl EulerTour {
    /// Number of arcs (2 × edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.pos.len()
    }

    /// Source vertex of arc `a`.
    #[inline]
    pub fn arc_src(&self, a: u32) -> u32 {
        let e = self.edges[(a / 2) as usize];
        if a & 1 == 0 {
            e.u
        } else {
            e.v
        }
    }

    /// Destination vertex of arc `a`.
    #[inline]
    pub fn arc_dst(&self, a: u32) -> u32 {
        self.arc_src(twin(a))
    }
}

/// Builds the Euler tour of the tree `edges` on vertices `0..n`, started
/// at `root` (the tour begins with an arc out of `root`).
///
/// `edges` must form a spanning tree of `0..n` (exactly `n - 1` edges,
/// connected, acyclic) with `n >= 1`; for `n == 1` the tour is empty.
pub fn euler_tour_classic(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    root: u32,
    ranker: Ranker,
) -> EulerTour {
    assert!(n >= 1);
    assert!(root < n);
    assert_eq!(
        edges.len() as u32 + 1,
        n,
        "a tree on {n} vertices has n-1 edges"
    );
    let t = edges.len();
    let num_arcs = 2 * t;
    if t == 0 {
        return EulerTour {
            n,
            edges,
            pos: vec![],
            order: vec![],
        };
    }

    // Arc source lookup without indirection.
    let arc_src = |a: u32| -> u32 {
        let e = edges[(a / 2) as usize];
        if a & 1 == 0 {
            e.u
        } else {
            e.v
        }
    };
    let arc_dst = |a: u32| arc_src(twin(a));

    // Sort arcs by (source, dest) to form the circular adjacency list:
    // (packed key, arc id) pairs through the parallel sample sort.
    let mut arcs: Vec<(u64, u32)> = (0..num_arcs as u32)
        .map(|a| (((arc_src(a) as u64) << 32) | arc_dst(a) as u64, a))
        .collect();
    par_sample_sort_by_key(pool, &mut arcs, |&(k, _)| k);
    let sorted_arcs: Vec<u32> = arcs.iter().map(|&(_, a)| a).collect();

    // next_around: successor within the source's circular arc list.
    // Position j links to j+1 unless j+1 starts a new source group, in
    // which case it wraps to its own group's start.
    let mut next_around = vec![NIL; num_arcs];
    {
        // group_start[j] = index of the first position of j's group —
        // computable per position by binary search on the packed key's
        // source half, so the loop parallelizes without a stitch.
        let na = SharedSlice::new(&mut next_around);
        let arcs_ro: &[(u64, u32)] = &arcs;
        let sorted_ro: &[u32] = &sorted_arcs;
        pool.run(|ctx| {
            for j in ctx.block_range(num_arcs) {
                let src = arcs_ro[j].0 >> 32;
                let next = if j + 1 < num_arcs && (arcs_ro[j + 1].0 >> 32) == src {
                    sorted_ro[j + 1]
                } else {
                    // Wrap to the first arc of this source group.
                    let g = arcs_ro.partition_point(|&(k, _)| (k >> 32) < src);
                    sorted_ro[g]
                };
                unsafe { na.write(sorted_ro[j] as usize, next) };
            }
        });
    }

    // Tour successor: succ[a] = next arc around dst(a) after twin(a).
    let mut succ = vec![NIL; num_arcs];
    {
        let succ_s = SharedSlice::new(&mut succ);
        let na: &[u32] = &next_around;
        pool.run(|ctx| {
            for a in ctx.block_range(num_arcs) {
                unsafe { succ_s.write(a, na[twin(a as u32) as usize]) };
            }
        });
    }

    // Break the circuit at the first arc out of `root` in sorted order.
    let start = {
        // Binary search the sorted keys for the first arc with src=root.
        let lo = arcs.partition_point(|&(k, _)| (k >> 32) < root as u64);
        assert!(
            lo < num_arcs && (arcs[lo].0 >> 32) == root as u64,
            "root {root} has no incident tree edge"
        );
        sorted_arcs[lo]
    };
    // The arc whose successor is `start`: its twin is the arc circularly
    // before `start` in root's adjacency group — equivalently the unique
    // b with next_around[b] == start; then pred = twin(b). Find b by
    // scanning root's group (average O(degree)).
    {
        let mut b = start;
        while next_around[b as usize] != start {
            b = next_around[b as usize];
        }
        succ[twin(b) as usize] = NIL;
    }

    // Rank the successor list.
    let pos = match ranker {
        Ranker::Sequential => list_rank_seq(&succ, start),
        Ranker::Wyllie => list_rank_wyllie(pool, &succ, start),
        Ranker::HelmanJaja => list_rank_hj(pool, &succ, start),
    };

    // Inverse permutation.
    let mut order = vec![NIL; num_arcs];
    {
        let order_s = SharedSlice::new(&mut order);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for a in ctx.block_range(num_arcs) {
                unsafe { order_s.write(pos_ro[a] as usize, a as u32) };
            }
        });
    }

    EulerTour {
        n,
        edges,
        pos,
        order,
    }
}

/// Checks the Euler-tour invariants (used by tests and debug builds):
/// consecutive arcs are head-to-tail, the tour starts and ends at
/// `root`, and every arc appears exactly once.
pub fn assert_valid_tour(tour: &EulerTour, root: u32) {
    let num_arcs = tour.num_arcs();
    if num_arcs == 0 {
        return;
    }
    assert_eq!(tour.order.len(), num_arcs);
    let mut seen = vec![false; num_arcs];
    for j in 0..num_arcs {
        let a = tour.order[j];
        assert!(!seen[a as usize], "arc {a} appears twice");
        seen[a as usize] = true;
        assert_eq!(tour.pos[a as usize] as usize, j, "pos/order mismatch");
        if j + 1 < num_arcs {
            assert_eq!(
                tour.arc_dst(a),
                tour.arc_src(tour.order[j + 1]),
                "tour not contiguous at position {j}"
            );
        }
    }
    assert_eq!(tour.arc_src(tour.order[0]), root, "tour must start at root");
    assert_eq!(
        tour.arc_dst(tour.order[num_arcs - 1]),
        root,
        "tour must end at root"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;

    fn tree_edges(g: &bcc_graph::Graph) -> Vec<Edge> {
        g.edges().to_vec()
    }

    #[test]
    fn single_vertex_tree() {
        let pool = Pool::new(2);
        let tour = euler_tour_classic(&pool, 1, vec![], 0, Ranker::Sequential);
        assert_eq!(tour.num_arcs(), 0);
        assert_valid_tour(&tour, 0);
    }

    #[test]
    fn single_edge_tree() {
        let pool = Pool::new(2);
        let tour = euler_tour_classic(&pool, 2, vec![Edge::new(0, 1)], 0, Ranker::Sequential);
        assert_eq!(tour.num_arcs(), 2);
        assert_valid_tour(&tour, 0);
        // Arc (0→1) then (1→0).
        assert_eq!(tour.order, vec![0, 1]);
    }

    #[test]
    fn path_tree_all_rankers_agree() {
        let pool = Pool::new(4);
        let g = gen::path(50);
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::HelmanJaja] {
            let tour = euler_tour_classic(&pool, 50, tree_edges(&g), 0, ranker);
            assert_valid_tour(&tour, 0);
        }
    }

    #[test]
    fn random_trees_valid_tours_any_root() {
        for seed in 0..4u64 {
            let g = gen::random_tree(200, seed);
            for p in [1, 3] {
                let pool = Pool::new(p);
                for root in [0u32, 7, 199] {
                    let tour =
                        euler_tour_classic(&pool, 200, tree_edges(&g), root, Ranker::HelmanJaja);
                    assert_valid_tour(&tour, root);
                }
            }
        }
    }

    #[test]
    fn star_tree_tour() {
        let pool = Pool::new(2);
        let g = gen::star(30);
        // Root at the hub and at a leaf.
        for root in [0u32, 5] {
            let tour = euler_tour_classic(&pool, 30, tree_edges(&g), root, Ranker::Wyllie);
            assert_valid_tour(&tour, root);
        }
    }

    #[test]
    fn large_tree_parallel_rankers_match_sequential_positions() {
        let g = gen::random_tree(3000, 99);
        let pool1 = Pool::new(1);
        let seq = euler_tour_classic(&pool1, 3000, tree_edges(&g), 0, Ranker::Sequential);
        let pool = Pool::new(4);
        let wy = euler_tour_classic(&pool, 3000, tree_edges(&g), 0, Ranker::Wyllie);
        let hj = euler_tour_classic(&pool, 3000, tree_edges(&g), 0, Ranker::HelmanJaja);
        // The tour structure (succ list) is identical, so positions are too.
        assert_eq!(seq.pos, wy.pos);
        assert_eq!(seq.pos, hj.pos);
    }

    #[test]
    #[should_panic]
    fn wrong_edge_count_rejected() {
        let pool = Pool::new(1);
        let _ = euler_tour_classic(&pool, 3, vec![Edge::new(0, 1)], 0, Ranker::Sequential);
    }
}

//! Lowest common ancestors by binary lifting.
//!
//! A standard companion to the Euler-tour tree computations: once
//! parents and depths are known, an O(n log n) jump table answers
//! `lca(u, v)` in O(log n). The table build is level-parallel (level k
//! is a data-parallel gather from level k−1). Used by downstream
//! consumers of the rooted spanning tree (e.g. cycle analysis of
//! nontree edges, as in the paper's Lemma 2 proof).

use crate::tree_compute::TreeInfo;
use bcc_smp::{Pool, SharedSlice};

/// Binary-lifting LCA index over a rooted tree.
pub struct LcaIndex {
    /// `up[k][v]` = the 2^k-th ancestor of `v` (root maps to itself).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl LcaIndex {
    /// Builds the index from rooted-tree data.
    ///
    /// ```
    /// use bcc_euler::{dfs_euler_tour, tree_computations, LcaIndex};
    /// use bcc_graph::Edge;
    /// use bcc_smp::Pool;
    ///
    /// // The path 0 - 1 - 2 rooted at 0.
    /// let pool = Pool::new(1);
    /// let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
    /// let tour = dfs_euler_tour(&pool, 3, edges, &[0, 0, 1], 0);
    /// let info = tree_computations(&pool, &tour, 0);
    /// let lca = LcaIndex::build(&pool, &info);
    /// assert_eq!(lca.lca(2, 0), 0);
    /// assert_eq!(lca.path_length(0, 2), 2);
    /// ```
    pub fn build(pool: &Pool, info: &TreeInfo) -> Self {
        Self::from_forest(pool, &info.parent, &info.depth)
    }

    /// Builds the index from raw parent/depth arrays — any rooted tree
    /// or forest, not just ones that came out of an Euler tour (the
    /// query engine lifts block-cut trees this way). Every root must
    /// satisfy `parent[r] == r` and `depth[r] == 0`; for forests,
    /// [`LcaIndex::lca`] is only meaningful when `u` and `v` share a
    /// tree (callers check connectivity first).
    pub fn from_forest(pool: &Pool, parent: &[u32], depth: &[u32]) -> Self {
        let n = parent.len();
        assert_eq!(n, depth.len(), "parent/depth length mismatch");
        let mut levels = 1usize;
        while (1usize << levels) < n.max(2) {
            levels += 1;
        }
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(levels);
        up.push(parent.to_vec());
        for k in 1..levels {
            let prev = &up[k - 1];
            let mut cur = vec![0u32; n];
            {
                let cur_s = SharedSlice::new(&mut cur);
                pool.run(|ctx| {
                    for v in ctx.block_range(n) {
                        unsafe { cur_s.write(v, prev[prev[v] as usize]) };
                    }
                });
            }
            up.push(cur);
        }
        LcaIndex {
            up,
            depth: depth.to_vec(),
        }
    }

    /// Depth of `v` (0 at the root).
    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    /// The ancestor of `v` that is `steps` levels up (clamped at root).
    pub fn ancestor(&self, v: u32, steps: u32) -> u32 {
        let mut v = v;
        let mut s = steps.min(self.depth[v as usize]);
        let mut k = 0;
        while s > 0 {
            if s & 1 == 1 {
                v = self.up[k][v as usize];
            }
            s >>= 1;
            k += 1;
        }
        v
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: u32, v: u32) -> u32 {
        let mut u = u;
        let mut v = v;
        // Equalize depths.
        if self.depth(u) < self.depth(v) {
            std::mem::swap(&mut u, &mut v);
        }
        u = self.ancestor(u, self.depth(u) - self.depth(v));
        if u == v {
            return u;
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][u as usize] != self.up[k][v as usize] {
                u = self.up[k][u as usize];
                v = self.up[k][v as usize];
            }
        }
        self.up[0][u as usize]
    }

    /// Number of tree edges on the path between `u` and `v`.
    pub fn path_length(&self, u: u32, v: u32) -> u32 {
        let a = self.lca(u, v);
        self.depth(u) + self.depth(v) - 2 * self.depth(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_tour::dfs_euler_tour;
    use crate::tree_compute::tree_computations;
    use bcc_graph::gen;

    fn info_of(tree: &bcc_graph::Graph, root: u32, pool: &Pool) -> TreeInfo {
        // Root via a BFS-like walk: reuse classic tour machinery.
        let csr = bcc_graph::Csr::build(tree);
        let mut parent = vec![bcc_smp::NIL; tree.n() as usize];
        parent[root as usize] = root;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &w in csr.neighbors(v) {
                if parent[w as usize] == bcc_smp::NIL {
                    parent[w as usize] = v;
                    stack.push(w);
                }
            }
        }
        let tour = dfs_euler_tour(pool, tree.n(), tree.edges().to_vec(), &parent, root);
        tree_computations(pool, &tour, root)
    }

    /// Brute-force LCA by walking parents.
    fn lca_oracle(info: &TreeInfo, mut u: u32, mut v: u32) -> u32 {
        while info.depth[u as usize] > info.depth[v as usize] {
            u = info.parent[u as usize];
        }
        while info.depth[v as usize] > info.depth[u as usize] {
            v = info.parent[v as usize];
        }
        while u != v {
            u = info.parent[u as usize];
            v = info.parent[v as usize];
        }
        u
    }

    #[test]
    fn matches_oracle_on_random_trees() {
        for seed in 0..4u64 {
            let tree = gen::random_tree(300, seed);
            for p in [1, 3] {
                let pool = Pool::new(p);
                let info = info_of(&tree, 0, &pool);
                let idx = LcaIndex::build(&pool, &info);
                let mut x = 12345u64;
                for _ in 0..300 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let u = (x >> 16) as u32 % 300;
                    let v = (x >> 40) as u32 % 300;
                    let want = lca_oracle(&info, u, v);
                    assert_eq!(idx.lca(u, v), want, "lca({u},{v}) seed={seed}");
                    assert_eq!(
                        idx.path_length(u, v),
                        info.depth[u as usize] + info.depth[v as usize]
                            - 2 * info.depth[want as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn lca_identities() {
        let pool = Pool::new(2);
        let tree = gen::binary_tree(63);
        let info = info_of(&tree, 0, &pool);
        let idx = LcaIndex::build(&pool, &info);
        for v in 0..63u32 {
            assert_eq!(idx.lca(v, v), v);
            assert_eq!(idx.lca(0, v), 0);
            assert_eq!(idx.path_length(v, v), 0);
            if v != 0 {
                let p = info.parent[v as usize];
                assert_eq!(idx.lca(v, p), p);
                assert_eq!(idx.path_length(v, p), 1);
            }
        }
        // Siblings 1 and 2 meet at the root.
        assert_eq!(idx.lca(1, 2), 0);
        // Cousins in a complete binary tree.
        assert_eq!(idx.lca(3, 5), 0);
        assert_eq!(idx.lca(3, 4), 1);
    }

    #[test]
    fn ancestor_clamps_at_root() {
        let pool = Pool::new(1);
        let tree = gen::path(10);
        let info = info_of(&tree, 0, &pool);
        let idx = LcaIndex::build(&pool, &info);
        assert_eq!(idx.ancestor(9, 3), 6);
        assert_eq!(idx.ancestor(9, 9), 0);
        assert_eq!(idx.ancestor(9, 1000), 0);
    }

    #[test]
    fn from_forest_handles_multiple_roots() {
        let pool = Pool::new(2);
        // Two trees: a path 0-1-2 rooted at 0 and a star 3-{4,5} rooted
        // at 3.
        let parent = vec![0, 0, 1, 3, 3, 3];
        let depth = vec![0, 1, 2, 0, 1, 1];
        let idx = LcaIndex::from_forest(&pool, &parent, &depth);
        assert_eq!(idx.lca(2, 1), 1);
        assert_eq!(idx.lca(2, 0), 0);
        assert_eq!(idx.lca(4, 5), 3);
        assert_eq!(idx.path_length(4, 5), 2);
        assert_eq!(idx.ancestor(2, 2), 0);
        assert_eq!(idx.ancestor(5, 7), 3); // clamps at its own root
    }

    #[test]
    fn singleton_tree() {
        let pool = Pool::new(2);
        let tree = bcc_graph::GraphBuilder::new(1).build().unwrap();
        let info = info_of(&tree, 0, &pool);
        let idx = LcaIndex::build(&pool, &info);
        assert_eq!(idx.lca(0, 0), 0);
    }
}

//! Cache-friendly DFS-order Euler tour (the TV-opt construction).
//!
//! Given a tree that is *already rooted* (TV-opt merges Spanning-tree
//! and Root-tree, so a parent array is available), emit the Euler tour
//! in depth-first order: consecutive tour arcs are consecutive in
//! memory, so every tree computation downstream is a prefix sum over a
//! contiguous array instead of a list ranking over scattered pointers
//! (paper §3.2; Cong & Bader ICPP 2004).
//!
//! The children structure is built in parallel (counting sort by parent
//! with a shared scan); the emit pass is a single sequential DFS — the
//! O(n) term the original achieves in O(n/p) w.h.p. via randomized
//! splitting. On the target machines the emit is a small fraction of
//! the pipeline (EXPERIMENTS.md quantifies it), and the prefix-sum tree
//! computations that follow are fully parallel.

use crate::tour::EulerTour;
use bcc_graph::Edge;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::workspace::{alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};
use std::sync::atomic::Ordering;

/// Builds a DFS-order Euler tour of the rooted tree `edges` /
/// `parent` (with `parent[root] == root`).
///
/// `edges` must be the tree's edge list; `parent` must orient exactly
/// those edges (every non-root vertex's parent edge is in `edges`).
pub fn dfs_euler_tour(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    parent: &[u32],
    root: u32,
) -> EulerTour {
    dfs_euler_tour_impl(pool, n, edges, parent, root, None)
}

/// [`dfs_euler_tour`] with all scratch and the tour's arrays taken
/// from `ws`; return the tour's buffers with [`EulerTour::recycle`].
pub fn dfs_euler_tour_ws(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    parent: &[u32],
    root: u32,
    ws: &BccWorkspace,
) -> EulerTour {
    dfs_euler_tour_impl(pool, n, edges, parent, root, Some(ws))
}

fn dfs_euler_tour_impl(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    parent: &[u32],
    root: u32,
    ws: Option<&BccWorkspace>,
) -> EulerTour {
    let n_us = n as usize;
    assert_eq!(parent.len(), n_us);
    assert!(root < n);
    assert_eq!(parent[root as usize], root);
    assert_eq!(edges.len() + 1, n_us, "tree must have n-1 edges");
    let t = edges.len();
    if t == 0 {
        return EulerTour {
            n,
            edges,
            pos: vec![],
            order: vec![],
        };
    }

    // Children CSR keyed by parent: counting sort over tree edges.
    let mut child_count = alloc_filled(ws, n_us, 0u32);
    {
        let cc = as_atomic_u32(&mut child_count);
        let edges_ro: &[Edge] = &edges;
        let parent_ro = parent;
        pool.run(|ctx| {
            for i in ctx.block_range(t) {
                let e = edges_ro[i];
                let p = tree_edge_parent(e, parent_ro);
                cc[p as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let mut offsets = alloc_filled(ws, n_us + 1, 0u32);
    offsets[1..].copy_from_slice(&child_count);
    match ws {
        Some(ws) => bcc_primitives::scan::inclusive_scan_par_ws(pool, &mut offsets[1..], ws),
        None => bcc_primitives::scan::inclusive_scan_par(pool, &mut offsets[1..]),
    }

    // child_arc[slot] = the advance arc (parent -> child) of each child.
    let mut cursor = alloc_filled(ws, n_us, 0u32);
    let mut child_arc = alloc_filled(ws, t, NIL);
    {
        let cur = as_atomic_u32(&mut cursor);
        let ca = SharedSlice::new(&mut child_arc);
        let offsets_ro: &[u32] = &offsets;
        let edges_ro: &[Edge] = &edges;
        pool.run(|ctx| {
            for i in ctx.block_range(t) {
                let e = edges_ro[i];
                let p = tree_edge_parent(e, parent);
                let adv = if e.u == p {
                    2 * i as u32
                } else {
                    2 * i as u32 + 1
                };
                let slot = offsets_ro[p as usize] + cur[p as usize].fetch_add(1, Ordering::Relaxed);
                unsafe { ca.write(slot as usize, adv) };
            }
        });
    }

    // Sequential DFS emit: iterative, O(n), contiguous writes.
    let num_arcs = 2 * t;
    let mut pos = alloc_filled(ws, num_arcs, NIL);
    let mut order = alloc_filled(ws, num_arcs, NIL);
    let mut counter = 0u32;
    // Stack entries: (vertex, next child slot, entering advance arc).
    let mut stack: Vec<(u32, u32, u32)> = bcc_smp::workspace::alloc_cap(ws, 64);
    stack.push((root, offsets[root as usize], NIL));
    while let Some(&mut (v, ref mut next_slot, enter)) = stack.last_mut() {
        if *next_slot < offsets[v as usize + 1] {
            let adv = child_arc[*next_slot as usize];
            *next_slot += 1;
            let child_edge = edges[(adv / 2) as usize];
            let child = if adv & 1 == 0 {
                child_edge.v
            } else {
                child_edge.u
            };
            pos[adv as usize] = counter;
            order[counter as usize] = adv;
            counter += 1;
            stack.push((child, offsets[child as usize], adv));
        } else {
            stack.pop();
            if enter != NIL {
                let ret = enter ^ 1;
                pos[ret as usize] = counter;
                order[counter as usize] = ret;
                counter += 1;
            }
        }
    }
    assert_eq!(counter as usize, num_arcs, "tour must cover every arc");

    give_opt(ws, stack);
    give_opt(ws, child_count);
    give_opt(ws, offsets);
    give_opt(ws, cursor);
    give_opt(ws, child_arc);

    EulerTour {
        n,
        edges,
        pos,
        order,
    }
}

/// The parent-side endpoint of a tree edge under `parent`.
#[inline]
fn tree_edge_parent(e: Edge, parent: &[u32]) -> u32 {
    if parent[e.v as usize] == e.u {
        e.u
    } else {
        debug_assert_eq!(
            parent[e.u as usize], e.v,
            "edge {e:?} is not oriented by the parent array"
        );
        e.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::assert_valid_tour;
    use crate::tree_compute::tree_computations;
    use bcc_connectivity::bfs::bfs_tree_seq;
    use bcc_graph::{gen, Csr};

    fn rooted_tree_of(g: &bcc_graph::Graph, root: u32) -> (Vec<Edge>, Vec<u32>) {
        // Use a BFS tree of the (tree) graph to obtain a parent array.
        let csr = Csr::build(g);
        let t = bfs_tree_seq(&csr, root);
        (g.edges().to_vec(), t.parent)
    }

    #[test]
    fn valid_tour_on_random_trees() {
        for seed in 0..4u64 {
            let g = gen::random_tree(400, seed);
            for p in [1, 4] {
                let pool = Pool::new(p);
                for root in [0u32, 200] {
                    let (edges, parent) = rooted_tree_of(&g, root);
                    let tour = dfs_euler_tour(&pool, 400, edges, &parent, root);
                    assert_valid_tour(&tour, root);
                }
            }
        }
    }

    #[test]
    fn tour_positions_are_dfs_contiguous() {
        // In a DFS tour, `order` is by construction position-sorted and
        // a subtree occupies a contiguous arc range.
        let g = gen::binary_tree(63);
        let pool = Pool::new(2);
        let (edges, parent) = rooted_tree_of(&g, 0);
        let tour = dfs_euler_tour(&pool, 63, edges, &parent, 0);
        assert_valid_tour(&tour, 0);
        let info = tree_computations(&pool, &tour, 0);
        // Depth of each child is parent depth + 1.
        for v in 1..63u32 {
            assert_eq!(
                info.depth[v as usize],
                info.depth[info.parent[v as usize] as usize] + 1
            );
        }
    }

    #[test]
    fn matches_classic_tour_semantics() {
        // Classic and DFS tours differ as sequences but must induce the
        // same parents, sizes, and depths.
        use crate::tour::{euler_tour_classic, Ranker};
        let g = gen::random_tree(500, 7);
        let pool = Pool::new(3);
        let root = 5u32;

        let classic = euler_tour_classic(&pool, 500, g.edges().to_vec(), root, Ranker::HelmanJaja);
        let ic = tree_computations(&pool, &classic, root);

        let (edges, parent) = rooted_tree_of(&g, root);
        let dfs = dfs_euler_tour(&pool, 500, edges, &parent, root);
        let id = tree_computations(&pool, &dfs, root);

        assert_eq!(ic.size, id.size);
        assert_eq!(ic.depth, id.depth);
        // Parents may differ only if the BFS parent array differs from
        // tour-derived rooting — same root, same tree ⇒ same parents.
        assert_eq!(ic.parent, id.parent);
    }

    #[test]
    fn singleton_and_single_edge() {
        let pool = Pool::new(1);
        let tour = dfs_euler_tour(&pool, 1, vec![], &[0], 0);
        assert_eq!(tour.num_arcs(), 0);

        let tour = dfs_euler_tour(&pool, 2, vec![Edge::new(1, 0)], &[0, 0], 0);
        assert_valid_tour(&tour, 0);
        assert_eq!(tour.num_arcs(), 2);
        // Edge stored as (1,0): advance arc is 2*0+1 = (0 -> 1).
        assert_eq!(tour.order, vec![1, 0]);
    }

    #[test]
    fn path_rooted_mid() {
        let g = gen::path(9);
        let pool = Pool::new(2);
        let (edges, parent) = rooted_tree_of(&g, 4);
        let tour = dfs_euler_tour(&pool, 9, edges, &parent, 4);
        assert_valid_tour(&tour, 4);
        let info = tree_computations(&pool, &tour, 4);
        assert_eq!(info.size[4], 9);
        assert_eq!(info.depth[0], 4);
        assert_eq!(info.depth[8], 4);
    }
}

//! Sort-free Euler-tour construction for already-rooted trees.
//!
//! The classic construction ([`crate::tour`]) sorts arcs because the
//! spanning tree arrives as a bare edge set. When the tree is already
//! rooted (parent array) — as with the BFS or work-stealing trees — the
//! tour successor function can be written down directly from a children
//! CSR, in O(1) per arc and fully in parallel, leaving list ranking as
//! the only non-trivial step. This is the construction style of Cong &
//! Bader's ICPP 2004 Euler-tour paper, and sits between the two
//! extremes the ablation compares:
//!
//! | construction | sort | ranking | emit |
//! |---|---|---|---|
//! | classic | parallel sample sort | required | — |
//! | **rooted (this)** | none | required | — |
//! | DFS-order | none | none | sequential O(n) |

use crate::tour::EulerTour;
use crate::tour::Ranker;
use crate::twin;
use bcc_graph::Edge;
use bcc_primitives::{
    list_rank_hj, list_rank_hj_ws, list_rank_seq, list_rank_seq_ws, list_rank_wyllie,
    list_rank_wyllie_ws,
};
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::workspace::{alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};
use std::sync::atomic::Ordering;

/// Builds the Euler tour of the rooted tree `edges`/`parent` without
/// sorting: tour successors come straight from a children CSR, then the
/// chosen list-ranking algorithm assigns positions.
pub fn rooted_euler_tour(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    parent: &[u32],
    root: u32,
    ranker: Ranker,
) -> EulerTour {
    rooted_euler_tour_impl(pool, n, edges, parent, root, ranker, None)
}

/// [`rooted_euler_tour`] with all scratch and the tour's arrays taken
/// from `ws`; return the tour's buffers with [`EulerTour::recycle`].
pub fn rooted_euler_tour_ws(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    parent: &[u32],
    root: u32,
    ranker: Ranker,
    ws: &BccWorkspace,
) -> EulerTour {
    rooted_euler_tour_impl(pool, n, edges, parent, root, ranker, Some(ws))
}

fn rooted_euler_tour_impl(
    pool: &Pool,
    n: u32,
    edges: Vec<Edge>,
    parent: &[u32],
    root: u32,
    ranker: Ranker,
    ws: Option<&BccWorkspace>,
) -> EulerTour {
    let n_us = n as usize;
    assert_eq!(parent.len(), n_us);
    assert!(root < n);
    assert_eq!(parent[root as usize], root);
    assert_eq!(edges.len() + 1, n_us, "tree must have n-1 edges");
    let t = edges.len();
    if t == 0 {
        return EulerTour {
            n,
            edges,
            pos: vec![],
            order: vec![],
        };
    }
    let num_arcs = 2 * t;

    // Children CSR (parallel counting sort by parent), remembering each
    // child's slot so "next sibling" is a constant-time lookup.
    let mut child_count = alloc_filled(ws, n_us, 0u32);
    {
        let cc = as_atomic_u32(&mut child_count);
        let edges_ro: &[Edge] = &edges;
        pool.run(|ctx| {
            for i in ctx.block_range(t) {
                let p = edge_parent(edges_ro[i], parent);
                cc[p as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let mut offsets = alloc_filled(ws, n_us + 1, 0u32);
    offsets[1..].copy_from_slice(&child_count);
    match ws {
        Some(ws) => bcc_primitives::scan::inclusive_scan_par_ws(pool, &mut offsets[1..], ws),
        None => bcc_primitives::scan::inclusive_scan_par(pool, &mut offsets[1..]),
    }

    let mut cursor = alloc_filled(ws, n_us, 0u32);
    let mut child_arc = alloc_filled(ws, t, NIL); // advance arcs, grouped by parent
    let mut slot_of = alloc_filled(ws, n_us, NIL); // child vertex -> its slot
    let mut adv_arc = alloc_filled(ws, n_us, NIL); // child vertex -> its advance arc
    {
        let cur = as_atomic_u32(&mut cursor);
        let ca = SharedSlice::new(&mut child_arc);
        let so = SharedSlice::new(&mut slot_of);
        let aa = SharedSlice::new(&mut adv_arc);
        let offsets_ro: &[u32] = &offsets;
        let edges_ro: &[Edge] = &edges;
        pool.run(|ctx| {
            for i in ctx.block_range(t) {
                let e = edges_ro[i];
                let p = edge_parent(e, parent);
                let c = e.other(p);
                let adv = if e.u == p {
                    2 * i as u32
                } else {
                    2 * i as u32 + 1
                };
                let slot = offsets_ro[p as usize] + cur[p as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: slots are claimed uniquely by the cursor; each
                // child vertex appears in exactly one tree edge.
                unsafe {
                    ca.write(slot as usize, adv);
                    so.write(c as usize, slot);
                    aa.write(c as usize, adv);
                }
            }
        });
    }

    // Tour successors, one O(1) rule per arc.
    let mut succ = alloc_filled(ws, num_arcs, NIL);
    {
        let succ_s = SharedSlice::new(&mut succ);
        let child_arc_ro: &[u32] = &child_arc;
        let slot_ro: &[u32] = &slot_of;
        let adv_ro: &[u32] = &adv_arc;
        let offsets_ro: &[u32] = &offsets;
        let edges_ro: &[Edge] = &edges;
        pool.run(|ctx| {
            for i in ctx.block_range(t) {
                let e = edges_ro[i];
                let p = edge_parent(e, parent);
                let c = e.other(p);
                let adv = adv_ro[c as usize];
                let ret = twin(adv);
                // After descending into c: c's first child, or back up.
                let c_lo = offsets_ro[c as usize];
                let c_hi = offsets_ro[c as usize + 1];
                let after_adv = if c_lo < c_hi {
                    child_arc_ro[c_lo as usize]
                } else {
                    ret
                };
                // After returning from c: next sibling, or close out p.
                let slot = slot_ro[c as usize];
                let p_hi = offsets_ro[p as usize + 1];
                let after_ret = if slot + 1 < p_hi {
                    child_arc_ro[slot as usize + 1]
                } else if p == root {
                    NIL // tour ends back at the root
                } else {
                    twin(adv_ro[p as usize])
                };
                unsafe {
                    succ_s.write(adv as usize, after_adv);
                    succ_s.write(ret as usize, after_ret);
                }
            }
        });
    }

    let start = child_arc[offsets[root as usize] as usize];
    let pos = match (ranker, ws) {
        (Ranker::Sequential, None) => list_rank_seq(&succ, start),
        (Ranker::Sequential, Some(ws)) => list_rank_seq_ws(&succ, start, ws),
        (Ranker::Wyllie, None) => list_rank_wyllie(pool, &succ, start),
        (Ranker::Wyllie, Some(ws)) => list_rank_wyllie_ws(pool, &succ, start, ws),
        (Ranker::HelmanJaja, None) => list_rank_hj(pool, &succ, start),
        (Ranker::HelmanJaja, Some(ws)) => list_rank_hj_ws(pool, &succ, start, ws),
    };
    let mut order = alloc_filled(ws, num_arcs, NIL);
    {
        let order_s = SharedSlice::new(&mut order);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for a in ctx.block_range(num_arcs) {
                unsafe { order_s.write(pos_ro[a] as usize, a as u32) };
            }
        });
    }

    give_opt(ws, child_count);
    give_opt(ws, offsets);
    give_opt(ws, cursor);
    give_opt(ws, child_arc);
    give_opt(ws, slot_of);
    give_opt(ws, adv_arc);
    give_opt(ws, succ);

    EulerTour {
        n,
        edges,
        pos,
        order,
    }
}

/// The parent-side endpoint of a tree edge under `parent`.
#[inline]
fn edge_parent(e: Edge, parent: &[u32]) -> u32 {
    if parent[e.v as usize] == e.u {
        e.u
    } else {
        debug_assert_eq!(parent[e.u as usize], e.v);
        e.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::assert_valid_tour;
    use crate::tree_compute::tree_computations;
    use bcc_graph::{gen, Csr, Graph};

    fn rooted(g: &Graph, root: u32) -> Vec<u32> {
        let csr = Csr::build(g);
        let mut parent = vec![NIL; g.n() as usize];
        parent[root as usize] = root;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &w in csr.neighbors(v) {
                if parent[w as usize] == NIL {
                    parent[w as usize] = v;
                    stack.push(w);
                }
            }
        }
        parent
    }

    #[test]
    fn valid_tours_on_families() {
        for (g, root) in [
            (gen::path(20), 0u32),
            (gen::path(20), 10),
            (gen::star(15), 0),
            (gen::star(15), 7),
            (gen::binary_tree(31), 0),
            (gen::random_tree(200, 3), 42),
        ] {
            let parent = rooted(&g, root);
            for p in [1, 4] {
                let pool = Pool::new(p);
                let tour = rooted_euler_tour(
                    &pool,
                    g.n(),
                    g.edges().to_vec(),
                    &parent,
                    root,
                    Ranker::HelmanJaja,
                );
                assert_valid_tour(&tour, root);
            }
        }
    }

    #[test]
    fn tree_computations_match_dfs_construction() {
        let g = gen::random_tree(400, 9);
        let root = 5u32;
        let parent = rooted(&g, root);
        let pool = Pool::new(3);
        let a = rooted_euler_tour(
            &pool,
            g.n(),
            g.edges().to_vec(),
            &parent,
            root,
            Ranker::Sequential,
        );
        let b = crate::dfs_tour::dfs_euler_tour(&pool, g.n(), g.edges().to_vec(), &parent, root);
        let ia = tree_computations(&pool, &a, root);
        let ib = tree_computations(&pool, &b, root);
        assert_eq!(ia.parent, ib.parent);
        assert_eq!(ia.size, ib.size);
        assert_eq!(ia.depth, ib.depth);
        // Preorders may differ (child order differs) but both are valid
        // permutations rooted at 0.
        assert_eq!(ia.preorder[root as usize], 0);
        assert_eq!(ib.preorder[root as usize], 0);
    }

    #[test]
    fn rankers_agree_on_structure() {
        // The parallel children-CSR build is order-nondeterministic, so
        // tour positions differ run to run at p > 1; what every ranker
        // must agree on is validity and the derived tree structure.
        let g = gen::random_tree(300, 1);
        let parent = rooted(&g, 0);
        let pool = Pool::new(4);
        let mut infos = Vec::new();
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::HelmanJaja] {
            let tour = rooted_euler_tour(&pool, g.n(), g.edges().to_vec(), &parent, 0, ranker);
            assert_valid_tour(&tour, 0);
            infos.push(tree_computations(&pool, &tour, 0));
        }
        for w in infos.windows(2) {
            assert_eq!(w[0].parent, w[1].parent);
            assert_eq!(w[0].size, w[1].size);
            assert_eq!(w[0].depth, w[1].depth);
        }
        // At p = 1 the construction is fully deterministic and rankers
        // must produce bit-identical positions.
        let pool1 = Pool::new(1);
        let a = rooted_euler_tour(
            &pool1,
            g.n(),
            g.edges().to_vec(),
            &parent,
            0,
            Ranker::Sequential,
        );
        let b = rooted_euler_tour(
            &pool1,
            g.n(),
            g.edges().to_vec(),
            &parent,
            0,
            Ranker::Wyllie,
        );
        assert_eq!(a.pos, b.pos);
    }

    #[test]
    fn singleton_and_pair() {
        let pool = Pool::new(2);
        let tour = rooted_euler_tour(&pool, 1, vec![], &[0], 0, Ranker::Sequential);
        assert_eq!(tour.num_arcs(), 0);
        let tour = rooted_euler_tour(
            &pool,
            2,
            vec![Edge::new(0, 1)],
            &[0, 0],
            0,
            Ranker::Sequential,
        );
        assert_valid_tour(&tour, 0);
    }
}

#![warn(missing_docs)]
//! The Euler-tour technique and tree computations.
//!
//! A spanning tree's Euler tour (each tree edge replaced by two
//! anti-parallel arcs, traversed as one closed walk) linearizes the tree
//! so that rooting, preorder numbering, and subtree aggregation become
//! array operations. This crate provides both constructions the paper
//! compares:
//!
//! * [`tour`] — the **classic** construction for TV-SMP: sort arcs by
//!   source to form a circular adjacency list, chain twin pointers into
//!   the tour successor function, then **list-rank** the successor list
//!   to obtain tour positions.
//! * [`dfs_tour`] — the **cache-friendly** construction for TV-opt
//!   (Cong & Bader, ICPP 2004): given an already-rooted tree, emit the
//!   tour in DFS order so positions are implicit and every tree
//!   computation reduces to a **prefix sum** over contiguous memory.
//! * [`tree_compute`] — rooting a tree from tour positions and deriving
//!   preorder numbers, subtree sizes, and depths.
//!
//! Arc convention throughout: tree edge `i = (u, v)` yields arc `2i`
//! (`u → v`) and arc `2i + 1` (`v → u`); `twin(a) = a ^ 1`.

pub mod dfs_tour;
pub mod lca;
pub mod rooted_tour;
pub mod tour;
pub mod tree_compute;

pub use dfs_tour::{dfs_euler_tour, dfs_euler_tour_ws};
pub use lca::LcaIndex;
pub use rooted_tour::{rooted_euler_tour, rooted_euler_tour_ws};
pub use tour::{euler_tour_classic, euler_tour_classic_ws, EulerTour, Ranker};
pub use tree_compute::{
    bfs_tree_info, bfs_tree_info_ws, tree_computations, tree_computations_ws, TreeInfo,
};

/// Twin (reverse) arc of `a`.
#[inline]
pub fn twin(a: u32) -> u32 {
    a ^ 1
}

//! Per-thread performance counters for the SPMD pool.
//!
//! The paper's analysis attributes parallel overhead to two machine
//! effects the wall clock alone cannot separate: time spent *waiting*
//! at barriers (synchronization cost) and *uneven* busy time across
//! threads (load imbalance). A [`Telemetry`] sink attached to a
//! [`Pool`](crate::Pool) via [`Pool::builder`](crate::Pool::builder)
//! splits every SPMD phase into those components:
//!
//! * `phase_runs` — number of [`Pool::run`](crate::Pool::run) phases
//!   executed.
//! * `barrier_episodes` — completed barrier episodes. Every `run`
//!   contributes exactly one (the end-of-phase join is a barrier in all
//!   but name), plus one per explicit in-closure
//!   [`Ctx::barrier`](crate::Ctx::barrier) episode.
//! * per-thread `busy` / `barrier_wait` — each thread's closure time
//!   splits into productive work and time blocked on barriers.
//!
//! Counters are recorded at phase *end* from a per-thread cell, so the
//! hot path adds one branch and two `Instant` reads per barrier when
//! enabled — and exactly one `Option` test per phase when disabled.
//! Pools built without a sink ([`Pool::new`](crate::Pool::new)) skip
//! even that: telemetry is strictly opt-in.
//!
//! The sink also carries *snapshot-lag* counters for the serving path:
//! whenever a reader answers a query from an epoch snapshot, it may
//! call [`Telemetry::record_snapshot_lag`] with how far behind the
//! latest published epoch that snapshot was — in commits and in wall
//! time. Both `bcc-serve` and the examples report lag through this one
//! channel, so a `PhaseReport` and a daemon run describe staleness in
//! the same units.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One thread's counters, padded to a cache line so threads never
/// contend on neighbouring counts.
#[repr(align(128))]
#[derive(Default)]
struct PerThread {
    busy_ns: AtomicU64,
    wait_ns: AtomicU64,
}

/// Accumulating counter sink for one pool. Cheap to share (`Arc`),
/// cheap to read; see the module docs for what is counted.
pub struct Telemetry {
    threads: usize,
    phase_runs: AtomicU64,
    barrier_episodes: AtomicU64,
    per_thread: Box<[PerThread]>,
    lag_samples: AtomicU64,
    lag_commits_sum: AtomicU64,
    lag_commits_max: AtomicU64,
    lag_wall_ns_sum: AtomicU64,
    lag_wall_ns_max: AtomicU64,
    sheds: AtomicU64,
}

impl Telemetry {
    /// A sink for a pool of `threads` SPMD threads.
    pub fn new(threads: usize) -> Telemetry {
        assert!(threads >= 1, "telemetry needs at least one thread");
        Telemetry {
            threads,
            phase_runs: AtomicU64::new(0),
            barrier_episodes: AtomicU64::new(0),
            per_thread: (0..threads).map(|_| PerThread::default()).collect(),
            lag_samples: AtomicU64::new(0),
            lag_commits_sum: AtomicU64::new(0),
            lag_commits_max: AtomicU64::new(0),
            lag_wall_ns_sum: AtomicU64::new(0),
            lag_wall_ns_max: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// Records `n` operations shed by admission control: offered load
    /// the serving layer *refused with a typed rejection* (never a
    /// silent drop) because a queue-depth or snapshot-lag watermark was
    /// crossed. Callable from any thread.
    pub fn record_shed(&self, n: u64) {
        self.sheds.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one snapshot-lag observation: a query was answered from
    /// a snapshot `commits` epochs behind the latest published one,
    /// created `wall` ago. Callable from any thread (these counters
    /// are global to the sink, not per-SPMD-thread).
    pub fn record_snapshot_lag(&self, commits: u64, wall: Duration) {
        self.lag_samples.fetch_add(1, Ordering::Relaxed);
        self.lag_commits_sum.fetch_add(commits, Ordering::Relaxed);
        self.lag_commits_max.fetch_max(commits, Ordering::Relaxed);
        let ns = wall.as_nanos().min(u64::MAX as u128) as u64;
        self.lag_wall_ns_sum.fetch_add(ns, Ordering::Relaxed);
        self.lag_wall_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Thread count this sink was sized for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    #[inline]
    pub(crate) fn record_run(&self) {
        self.phase_runs.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_episode(&self) {
        self.barrier_episodes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_thread(&self, tid: usize, busy_ns: u64, wait_ns: u64) {
        let t = &self.per_thread[tid];
        t.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        t.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters (reads are relaxed; the
    /// caller is expected to snapshot while the pool is quiescent,
    /// which every `Pool::run` return guarantees).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            phase_runs: self.phase_runs.load(Ordering::Relaxed),
            barrier_episodes: self.barrier_episodes.load(Ordering::Relaxed),
            busy: self
                .per_thread
                .iter()
                .map(|t| Duration::from_nanos(t.busy_ns.load(Ordering::Relaxed)))
                .collect(),
            barrier_wait: self
                .per_thread
                .iter()
                .map(|t| Duration::from_nanos(t.wait_ns.load(Ordering::Relaxed)))
                .collect(),
            snapshot_lag_samples: self.lag_samples.load(Ordering::Relaxed),
            snapshot_lag_commits: self.lag_commits_sum.load(Ordering::Relaxed),
            snapshot_lag_commits_max: self.lag_commits_max.load(Ordering::Relaxed),
            snapshot_lag_wall: Duration::from_nanos(self.lag_wall_ns_sum.load(Ordering::Relaxed)),
            snapshot_lag_wall_max: Duration::from_nanos(
                self.lag_wall_ns_max.load(Ordering::Relaxed),
            ),
            sheds: self.sheds.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.phase_runs.store(0, Ordering::Relaxed);
        self.barrier_episodes.store(0, Ordering::Relaxed);
        for t in self.per_thread.iter() {
            t.busy_ns.store(0, Ordering::Relaxed);
            t.wait_ns.store(0, Ordering::Relaxed);
        }
        self.lag_samples.store(0, Ordering::Relaxed);
        self.lag_commits_sum.store(0, Ordering::Relaxed);
        self.lag_commits_max.store(0, Ordering::Relaxed);
        self.lag_wall_ns_sum.store(0, Ordering::Relaxed);
        self.lag_wall_ns_max.store(0, Ordering::Relaxed);
        self.sheds.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Telemetry")
            .field("threads", &self.threads)
            .field("phase_runs", &snap.phase_runs)
            .field("barrier_episodes", &snap.barrier_episodes)
            .finish()
    }
}

/// Point-in-time copy of a [`Telemetry`] sink's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// [`Pool::run`](crate::Pool::run) phases executed so far.
    pub phase_runs: u64,
    /// Barrier episodes completed (one per run, plus explicit ones).
    pub barrier_episodes: u64,
    /// Per-thread productive time (closure time minus barrier waits).
    pub busy: Vec<Duration>,
    /// Per-thread time blocked on barriers (including the end-of-phase
    /// join on thread 0).
    pub barrier_wait: Vec<Duration>,
    /// Snapshot-lag observations recorded so far.
    pub snapshot_lag_samples: u64,
    /// Sum over all observations of how many commits behind the latest
    /// epoch the answering snapshot was.
    pub snapshot_lag_commits: u64,
    /// Worst single observation, in commits (a high-water mark since
    /// the last [`Telemetry::reset`], *not* an interval value — see
    /// [`delta_since`](TelemetrySnapshot::delta_since)).
    pub snapshot_lag_commits_max: u64,
    /// Sum over all observations of the answering snapshot's age.
    pub snapshot_lag_wall: Duration,
    /// Worst single observation of snapshot age (high-water mark since
    /// reset, like `snapshot_lag_commits_max`).
    pub snapshot_lag_wall_max: Duration,
    /// Operations shed by admission control (typed rejections issued
    /// when a queue-depth or snapshot-lag watermark was crossed).
    pub sheds: u64,
}

impl TelemetrySnapshot {
    /// Mean snapshot lag in commits (`0.0` with no samples).
    pub fn snapshot_lag_mean_commits(&self) -> f64 {
        if self.snapshot_lag_samples == 0 {
            return 0.0;
        }
        self.snapshot_lag_commits as f64 / self.snapshot_lag_samples as f64
    }

    /// Mean snapshot age (zero with no samples).
    pub fn snapshot_lag_mean_wall(&self) -> Duration {
        if self.snapshot_lag_samples == 0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(
            self.snapshot_lag_wall.as_secs_f64() / self.snapshot_lag_samples as f64,
        )
    }

    /// Load-imbalance ratio: max per-thread busy time over mean busy
    /// time. `1.0` is perfect balance; `p` is one thread doing all the
    /// work. Returns `1.0` when no busy time was recorded.
    pub fn imbalance(&self) -> f64 {
        let max = self.busy.iter().max().copied().unwrap_or_default();
        let sum: Duration = self.busy.iter().sum();
        if sum.is_zero() {
            return 1.0;
        }
        let mean = sum.as_secs_f64() / self.busy.len() as f64;
        max.as_secs_f64() / mean
    }

    /// Sum of per-thread busy time.
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Sum of per-thread barrier-wait time.
    pub fn total_barrier_wait(&self) -> Duration {
        self.barrier_wait.iter().sum()
    }

    /// The worst single thread's barrier-wait time.
    pub fn max_barrier_wait(&self) -> Duration {
        self.barrier_wait.iter().max().copied().unwrap_or_default()
    }

    /// Counter movement between `earlier` and `self` (saturating, so a
    /// `reset` between the two snapshots yields zeros rather than a
    /// panic). The `*_max` high-water marks cannot be subtracted, so
    /// the delta carries `self`'s values — an upper bound for the
    /// interval, exact when `earlier` was taken right after a reset.
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let sub = |a: &[Duration], b: &[Duration]| -> Vec<Duration> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&Duration::ZERO)))
                .map(|(x, y)| x.saturating_sub(*y))
                .collect()
        };
        TelemetrySnapshot {
            phase_runs: self.phase_runs.saturating_sub(earlier.phase_runs),
            barrier_episodes: self
                .barrier_episodes
                .saturating_sub(earlier.barrier_episodes),
            busy: sub(&self.busy, &earlier.busy),
            barrier_wait: sub(&self.barrier_wait, &earlier.barrier_wait),
            snapshot_lag_samples: self
                .snapshot_lag_samples
                .saturating_sub(earlier.snapshot_lag_samples),
            snapshot_lag_commits: self
                .snapshot_lag_commits
                .saturating_sub(earlier.snapshot_lag_commits),
            snapshot_lag_commits_max: self.snapshot_lag_commits_max,
            snapshot_lag_wall: self
                .snapshot_lag_wall
                .saturating_sub(earlier.snapshot_lag_wall),
            snapshot_lag_wall_max: self.snapshot_lag_wall_max,
            sheds: self.sheds.saturating_sub(earlier.sheds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_reflects_recordings() {
        let t = Telemetry::new(2);
        t.record_run();
        t.record_episode();
        t.record_thread(0, 1_000, 500);
        t.record_thread(1, 3_000, 0);
        let s = t.snapshot();
        assert_eq!(s.phase_runs, 1);
        assert_eq!(s.barrier_episodes, 1);
        assert_eq!(
            s.busy,
            vec![Duration::from_nanos(1_000), Duration::from_nanos(3_000)]
        );
        assert_eq!(s.total_barrier_wait(), Duration::from_nanos(500));
        assert_eq!(s.total_busy(), Duration::from_nanos(4_000));
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let t = Telemetry::new(4);
        // One thread does all the work: imbalance == p.
        t.record_thread(2, 4_000, 0);
        assert!((t.snapshot().imbalance() - 4.0).abs() < 1e-9);
        // Perfect balance: imbalance == 1.
        t.reset();
        for tid in 0..4 {
            t.record_thread(tid, 1_000, 0);
        }
        assert!((t.snapshot().imbalance() - 1.0).abs() < 1e-9);
        // No work at all: defined as 1.
        t.reset();
        assert_eq!(t.snapshot().imbalance(), 1.0);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let t = Telemetry::new(1);
        t.record_run();
        t.record_thread(0, 100, 10);
        let before = t.snapshot();
        t.record_run();
        t.record_run();
        t.record_episode();
        t.record_thread(0, 250, 40);
        let delta = t.snapshot().delta_since(&before);
        assert_eq!(delta.phase_runs, 2);
        assert_eq!(delta.barrier_episodes, 1);
        assert_eq!(delta.busy[0], Duration::from_nanos(250));
        assert_eq!(delta.barrier_wait[0], Duration::from_nanos(40));
    }

    #[test]
    fn snapshot_lag_sums_means_and_maxes() {
        let t = Telemetry::new(1);
        let s = t.snapshot();
        assert_eq!(s.snapshot_lag_samples, 0);
        assert_eq!(s.snapshot_lag_mean_commits(), 0.0);
        assert_eq!(s.snapshot_lag_mean_wall(), Duration::ZERO);

        t.record_snapshot_lag(0, Duration::from_micros(10));
        t.record_snapshot_lag(4, Duration::from_micros(30));
        let s = t.snapshot();
        assert_eq!(s.snapshot_lag_samples, 2);
        assert_eq!(s.snapshot_lag_commits, 4);
        assert_eq!(s.snapshot_lag_commits_max, 4);
        assert_eq!(s.snapshot_lag_wall, Duration::from_micros(40));
        assert_eq!(s.snapshot_lag_wall_max, Duration::from_micros(30));
        assert!((s.snapshot_lag_mean_commits() - 2.0).abs() < 1e-9);
        assert_eq!(s.snapshot_lag_mean_wall(), Duration::from_micros(20));

        let d = t.snapshot().delta_since(&s);
        assert_eq!(d.snapshot_lag_samples, 0);
        assert_eq!(d.snapshot_lag_commits, 0);
        // Maxes are high-water marks, carried rather than subtracted.
        assert_eq!(d.snapshot_lag_commits_max, 4);

        t.reset();
        let s = t.snapshot();
        assert_eq!(s.snapshot_lag_samples, 0);
        assert_eq!(s.snapshot_lag_commits_max, 0);
        assert_eq!(s.snapshot_lag_wall_max, Duration::ZERO);
    }

    #[test]
    fn shed_counts_accumulate_delta_and_reset() {
        let t = Telemetry::new(1);
        assert_eq!(t.snapshot().sheds, 0);
        t.record_shed(3);
        let mid = t.snapshot();
        assert_eq!(mid.sheds, 3);
        t.record_shed(2);
        assert_eq!(t.snapshot().sheds, 5);
        assert_eq!(t.snapshot().delta_since(&mid).sheds, 2);
        t.reset();
        assert_eq!(t.snapshot().sheds, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = Arc::new(Telemetry::new(3));
        t.record_run();
        t.record_episode();
        t.record_thread(1, 5, 5);
        t.reset();
        let s = t.snapshot();
        assert_eq!(s.phase_runs, 0);
        assert_eq!(s.barrier_episodes, 0);
        assert_eq!(s.total_busy(), Duration::ZERO);
        assert_eq!(s.total_barrier_wait(), Duration::ZERO);
    }
}

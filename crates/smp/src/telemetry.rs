//! Per-thread performance counters for the SPMD pool.
//!
//! The paper's analysis attributes parallel overhead to two machine
//! effects the wall clock alone cannot separate: time spent *waiting*
//! at barriers (synchronization cost) and *uneven* busy time across
//! threads (load imbalance). A [`Telemetry`] sink attached to a
//! [`Pool`](crate::Pool) via [`Pool::builder`](crate::Pool::builder)
//! splits every SPMD phase into those components:
//!
//! * `phase_runs` — number of [`Pool::run`](crate::Pool::run) phases
//!   executed.
//! * `barrier_episodes` — completed barrier episodes. Every `run`
//!   contributes exactly one (the end-of-phase join is a barrier in all
//!   but name), plus one per explicit in-closure
//!   [`Ctx::barrier`](crate::Ctx::barrier) episode.
//! * per-thread `busy` / `barrier_wait` — each thread's closure time
//!   splits into productive work and time blocked on barriers.
//!
//! Counters are recorded at phase *end* from a per-thread cell, so the
//! hot path adds one branch and two `Instant` reads per barrier when
//! enabled — and exactly one `Option` test per phase when disabled.
//! Pools built without a sink ([`Pool::new`](crate::Pool::new)) skip
//! even that: telemetry is strictly opt-in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One thread's counters, padded to a cache line so threads never
/// contend on neighbouring counts.
#[repr(align(128))]
#[derive(Default)]
struct PerThread {
    busy_ns: AtomicU64,
    wait_ns: AtomicU64,
}

/// Accumulating counter sink for one pool. Cheap to share (`Arc`),
/// cheap to read; see the module docs for what is counted.
pub struct Telemetry {
    threads: usize,
    phase_runs: AtomicU64,
    barrier_episodes: AtomicU64,
    per_thread: Box<[PerThread]>,
}

impl Telemetry {
    /// A sink for a pool of `threads` SPMD threads.
    pub fn new(threads: usize) -> Telemetry {
        assert!(threads >= 1, "telemetry needs at least one thread");
        Telemetry {
            threads,
            phase_runs: AtomicU64::new(0),
            barrier_episodes: AtomicU64::new(0),
            per_thread: (0..threads).map(|_| PerThread::default()).collect(),
        }
    }

    /// Thread count this sink was sized for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    #[inline]
    pub(crate) fn record_run(&self) {
        self.phase_runs.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_episode(&self) {
        self.barrier_episodes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_thread(&self, tid: usize, busy_ns: u64, wait_ns: u64) {
        let t = &self.per_thread[tid];
        t.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        t.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters (reads are relaxed; the
    /// caller is expected to snapshot while the pool is quiescent,
    /// which every `Pool::run` return guarantees).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            phase_runs: self.phase_runs.load(Ordering::Relaxed),
            barrier_episodes: self.barrier_episodes.load(Ordering::Relaxed),
            busy: self
                .per_thread
                .iter()
                .map(|t| Duration::from_nanos(t.busy_ns.load(Ordering::Relaxed)))
                .collect(),
            barrier_wait: self
                .per_thread
                .iter()
                .map(|t| Duration::from_nanos(t.wait_ns.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.phase_runs.store(0, Ordering::Relaxed);
        self.barrier_episodes.store(0, Ordering::Relaxed);
        for t in self.per_thread.iter() {
            t.busy_ns.store(0, Ordering::Relaxed);
            t.wait_ns.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Telemetry")
            .field("threads", &self.threads)
            .field("phase_runs", &snap.phase_runs)
            .field("barrier_episodes", &snap.barrier_episodes)
            .finish()
    }
}

/// Point-in-time copy of a [`Telemetry`] sink's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// [`Pool::run`](crate::Pool::run) phases executed so far.
    pub phase_runs: u64,
    /// Barrier episodes completed (one per run, plus explicit ones).
    pub barrier_episodes: u64,
    /// Per-thread productive time (closure time minus barrier waits).
    pub busy: Vec<Duration>,
    /// Per-thread time blocked on barriers (including the end-of-phase
    /// join on thread 0).
    pub barrier_wait: Vec<Duration>,
}

impl TelemetrySnapshot {
    /// Load-imbalance ratio: max per-thread busy time over mean busy
    /// time. `1.0` is perfect balance; `p` is one thread doing all the
    /// work. Returns `1.0` when no busy time was recorded.
    pub fn imbalance(&self) -> f64 {
        let max = self.busy.iter().max().copied().unwrap_or_default();
        let sum: Duration = self.busy.iter().sum();
        if sum.is_zero() {
            return 1.0;
        }
        let mean = sum.as_secs_f64() / self.busy.len() as f64;
        max.as_secs_f64() / mean
    }

    /// Sum of per-thread busy time.
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Sum of per-thread barrier-wait time.
    pub fn total_barrier_wait(&self) -> Duration {
        self.barrier_wait.iter().sum()
    }

    /// The worst single thread's barrier-wait time.
    pub fn max_barrier_wait(&self) -> Duration {
        self.barrier_wait.iter().max().copied().unwrap_or_default()
    }

    /// Counter movement between `earlier` and `self` (saturating, so a
    /// `reset` between the two snapshots yields zeros rather than a
    /// panic).
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let sub = |a: &[Duration], b: &[Duration]| -> Vec<Duration> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&Duration::ZERO)))
                .map(|(x, y)| x.saturating_sub(*y))
                .collect()
        };
        TelemetrySnapshot {
            phase_runs: self.phase_runs.saturating_sub(earlier.phase_runs),
            barrier_episodes: self
                .barrier_episodes
                .saturating_sub(earlier.barrier_episodes),
            busy: sub(&self.busy, &earlier.busy),
            barrier_wait: sub(&self.barrier_wait, &earlier.barrier_wait),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_reflects_recordings() {
        let t = Telemetry::new(2);
        t.record_run();
        t.record_episode();
        t.record_thread(0, 1_000, 500);
        t.record_thread(1, 3_000, 0);
        let s = t.snapshot();
        assert_eq!(s.phase_runs, 1);
        assert_eq!(s.barrier_episodes, 1);
        assert_eq!(
            s.busy,
            vec![Duration::from_nanos(1_000), Duration::from_nanos(3_000)]
        );
        assert_eq!(s.total_barrier_wait(), Duration::from_nanos(500));
        assert_eq!(s.total_busy(), Duration::from_nanos(4_000));
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let t = Telemetry::new(4);
        // One thread does all the work: imbalance == p.
        t.record_thread(2, 4_000, 0);
        assert!((t.snapshot().imbalance() - 4.0).abs() < 1e-9);
        // Perfect balance: imbalance == 1.
        t.reset();
        for tid in 0..4 {
            t.record_thread(tid, 1_000, 0);
        }
        assert!((t.snapshot().imbalance() - 1.0).abs() < 1e-9);
        // No work at all: defined as 1.
        t.reset();
        assert_eq!(t.snapshot().imbalance(), 1.0);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let t = Telemetry::new(1);
        t.record_run();
        t.record_thread(0, 100, 10);
        let before = t.snapshot();
        t.record_run();
        t.record_run();
        t.record_episode();
        t.record_thread(0, 250, 40);
        let delta = t.snapshot().delta_since(&before);
        assert_eq!(delta.phase_runs, 2);
        assert_eq!(delta.barrier_episodes, 1);
        assert_eq!(delta.busy[0], Duration::from_nanos(250));
        assert_eq!(delta.barrier_wait[0], Duration::from_nanos(40));
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = Arc::new(Telemetry::new(3));
        t.record_run();
        t.record_episode();
        t.record_thread(1, 5, 5);
        t.reset();
        let s = t.snapshot();
        assert_eq!(s.phase_runs, 0);
        assert_eq!(s.barrier_episodes, 0);
        assert_eq!(s.total_busy(), Duration::ZERO);
        assert_eq!(s.total_barrier_wait(), Duration::ZERO);
    }
}

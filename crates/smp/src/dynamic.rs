//! Dynamically scheduled loops: a shared chunk counter.
//!
//! Static block partitioning is ideal for uniform work, but irregular
//! phases (processing a BFS frontier whose vertices have wildly varying
//! degrees) balance better when threads grab fixed-size chunks from a
//! shared counter — the classic "guided/dynamic schedule" of SMP codes.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared counter that hands out disjoint chunks of `0..n`.
///
/// Create one per parallel loop (before entering the SPMD region) and let
/// every thread pull chunks until exhaustion:
///
/// ```
/// use bcc_smp::{Pool, ChunkCounter};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = Pool::new(4);
/// let work = ChunkCounter::new(10_000, 64);
/// let done = AtomicUsize::new(0);
/// pool.run(|_ctx| {
///     while let Some(range) = work.next_chunk() {
///         done.fetch_add(range.len(), Ordering::Relaxed);
///     }
/// });
/// assert_eq!(done.load(Ordering::Relaxed), 10_000);
/// ```
///
/// For index spaces with skewed per-index cost (a frontier whose
/// vertices have wildly different degrees), [`ChunkCounter::weighted`]
/// sizes chunks by a *work budget* instead of an index count, so one
/// hub vertex does not serialize an entire fat chunk behind one thread.
pub struct ChunkCounter {
    next: AtomicUsize,
    n: usize,
    chunk: usize,
    /// Weighted mode: precomputed chunk boundaries (`bounds[i]..bounds[i+1]`
    /// is chunk `i`); `next` then counts chunks, not indices.
    bounds: Option<Vec<usize>>,
}

impl ChunkCounter {
    /// Chunked iteration over `0..n` in chunks of `chunk` (>= 1).
    pub fn new(n: usize, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk size must be at least 1");
        ChunkCounter {
            next: AtomicUsize::new(0),
            n,
            chunk,
            bounds: None,
        }
    }

    /// Chunked iteration over `0..n` where chunk `i` ends as soon as
    /// `weight(start) + … + weight(end - 1)` reaches `budget` — degree-
    /// aware scheduling: pass each vertex's degree as its weight and an
    /// edge budget, and every chunk costs roughly `budget` edge
    /// traversals regardless of skew. An index whose own weight exceeds
    /// the budget gets a chunk to itself.
    ///
    /// Boundaries are computed once (O(n)); [`reset`](Self::reset) makes
    /// the counter reusable across rounds of the same index space (BFS
    /// re-sweeps `0..n` every bottom-up level).
    ///
    /// ```
    /// use bcc_smp::ChunkCounter;
    ///
    /// // A star: vertex 0 has degree 99, the rest degree 1.
    /// let deg = |v: usize| if v == 0 { 99 } else { 1 };
    /// let work = ChunkCounter::weighted(100, 32, deg);
    /// assert_eq!(work.next_chunk(), Some(0..1)); // the hub, alone
    /// assert_eq!(work.next_chunk(), Some(1..33)); // 32 spokes
    /// ```
    pub fn weighted(n: usize, budget: usize, weight: impl Fn(usize) -> usize) -> Self {
        assert!(budget >= 1, "chunk budget must be at least 1");
        let mut bounds = vec![0];
        let mut acc = 0usize;
        for i in 0..n {
            acc = acc.saturating_add(weight(i).max(1));
            if acc >= budget {
                bounds.push(i + 1);
                acc = 0;
            }
        }
        if *bounds.last().unwrap() != n {
            bounds.push(n);
        }
        ChunkCounter {
            next: AtomicUsize::new(0),
            n,
            chunk: 1,
            bounds: Some(bounds),
        }
    }

    /// Grabs the next unprocessed chunk, or `None` when work is drained.
    #[inline]
    pub fn next_chunk(&self) -> Option<Range<usize>> {
        if let Some(bounds) = &self.bounds {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i + 1 >= bounds.len() {
                return None;
            }
            return Some(bounds[i]..bounds[i + 1]);
        }
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(start..(start + self.chunk).min(self.n))
    }

    /// Resets the counter for reuse on the same `n` (call between
    /// barriers, from a single thread).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }

    /// Total iteration count this counter distributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the loop is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn chunks_cover_exactly_once() {
        let pool = Pool::new(4);
        let n = 10_007; // prime: exercises ragged final chunk
        let counter = ChunkCounter::new(n, 97);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|_| {
            while let Some(r) = counter.next_chunk() {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_yields_nothing() {
        let counter = ChunkCounter::new(0, 16);
        assert!(counter.next_chunk().is_none());
        assert!(counter.is_empty());
    }

    #[test]
    fn reset_allows_reuse() {
        let counter = ChunkCounter::new(10, 4);
        let mut total = 0;
        while let Some(r) = counter.next_chunk() {
            total += r.len();
        }
        assert_eq!(total, 10);
        counter.reset();
        assert_eq!(counter.next_chunk(), Some(0..4));
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        let _ = ChunkCounter::new(10, 0);
    }

    /// Star graph: center has degree n-1, spokes degree 1. Edge-budget
    /// chunking must isolate the hub and still tile `0..n` exactly.
    #[test]
    fn weighted_chunks_isolate_star_hub_and_tile_exactly() {
        let n = 1000;
        let deg = |v: usize| if v == 0 { n - 1 } else { 1 };
        let counter = ChunkCounter::weighted(n, 64, deg);
        let mut chunks = vec![];
        while let Some(r) = counter.next_chunk() {
            chunks.push(r);
        }
        // The hub sits alone in the first chunk.
        assert_eq!(chunks[0], 0..1);
        // Chunks tile 0..n contiguously.
        let mut prev_end = 0;
        for r in &chunks {
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
        }
        assert_eq!(prev_end, n);
        // No chunk (except a single oversized index) exceeds ~budget
        // work: every multi-index chunk here is exactly 64 spokes wide,
        // modulo the ragged tail.
        for r in &chunks[1..] {
            assert!(r.len() <= 64, "chunk {r:?} too fat");
        }
    }

    #[test]
    fn weighted_chunks_parallel_coverage_and_reset() {
        let pool = Pool::new(4);
        let n = 4099;
        let counter = ChunkCounter::weighted(n, 50, |v| v % 17);
        for _ in 0..2 {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(|_| {
                while let Some(r) = counter.next_chunk() {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            counter.reset();
        }
    }

    #[test]
    fn weighted_empty_and_uniform_weights() {
        let counter = ChunkCounter::weighted(0, 8, |_| 1);
        assert!(counter.next_chunk().is_none());
        // Uniform weight w and budget k*w behaves like uniform chunks
        // of size k.
        let counter = ChunkCounter::weighted(10, 4, |_| 2);
        assert_eq!(counter.next_chunk(), Some(0..2));
        assert_eq!(counter.next_chunk(), Some(2..4));
    }
}

//! Dynamically scheduled loops: a shared chunk counter.
//!
//! Static block partitioning is ideal for uniform work, but irregular
//! phases (processing a BFS frontier whose vertices have wildly varying
//! degrees) balance better when threads grab fixed-size chunks from a
//! shared counter — the classic "guided/dynamic schedule" of SMP codes.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared counter that hands out disjoint chunks of `0..n`.
///
/// Create one per parallel loop (before entering the SPMD region) and let
/// every thread pull chunks until exhaustion:
///
/// ```
/// use bcc_smp::{Pool, ChunkCounter};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = Pool::new(4);
/// let work = ChunkCounter::new(10_000, 64);
/// let done = AtomicUsize::new(0);
/// pool.run(|_ctx| {
///     while let Some(range) = work.next_chunk() {
///         done.fetch_add(range.len(), Ordering::Relaxed);
///     }
/// });
/// assert_eq!(done.load(Ordering::Relaxed), 10_000);
/// ```
pub struct ChunkCounter {
    next: AtomicUsize,
    n: usize,
    chunk: usize,
}

impl ChunkCounter {
    /// Chunked iteration over `0..n` in chunks of `chunk` (>= 1).
    pub fn new(n: usize, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk size must be at least 1");
        ChunkCounter {
            next: AtomicUsize::new(0),
            n,
            chunk,
        }
    }

    /// Grabs the next unprocessed chunk, or `None` when work is drained.
    #[inline]
    pub fn next_chunk(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(start..(start + self.chunk).min(self.n))
    }

    /// Resets the counter for reuse on the same `n` (call between
    /// barriers, from a single thread).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }

    /// Total iteration count this counter distributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the loop is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn chunks_cover_exactly_once() {
        let pool = Pool::new(4);
        let n = 10_007; // prime: exercises ragged final chunk
        let counter = ChunkCounter::new(n, 97);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|_| {
            while let Some(r) = counter.next_chunk() {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_yields_nothing() {
        let counter = ChunkCounter::new(0, 16);
        assert!(counter.next_chunk().is_none());
        assert!(counter.is_empty());
    }

    #[test]
    fn reset_allows_reuse() {
        let counter = ChunkCounter::new(10, 4);
        let mut total = 0;
        while let Some(r) = counter.next_chunk() {
            total += r.len();
        }
        assert_eq!(total, 10);
        counter.reset();
        assert_eq!(counter.next_chunk(), Some(0..4));
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        let _ = ChunkCounter::new(10, 0);
    }
}

//! Atomic views and CAS helpers for graft-and-claim phases.
//!
//! Shiloach–Vishkin grafting, BFS parent claiming, and work-stealing
//! traversal all race threads on `u32` arrays with compare-and-swap. The
//! helpers here reinterpret plain `&mut [u32]` storage as atomic slices
//! for the duration of such a phase, so the rest of the pipeline can keep
//! using cheap non-atomic accesses.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Reinterprets a mutable `u32` slice as a slice of `AtomicU32`.
///
/// Sound because `AtomicU32` is guaranteed to have the same size and
/// alignment as `u32` (documented in `std::sync::atomic`), and the
/// exclusive borrow rules out non-atomic concurrent access for the
/// lifetime of the returned view.
#[inline]
pub fn as_atomic_u32(slice: &mut [u32]) -> &[AtomicU32] {
    unsafe { &*(slice as *mut [u32] as *const [AtomicU32]) }
}

/// Reinterprets a mutable `usize` slice as a slice of `AtomicUsize`.
#[inline]
pub fn as_atomic_usize(slice: &mut [usize]) -> &[AtomicUsize] {
    unsafe { &*(slice as *mut [usize] as *const [AtomicUsize]) }
}

/// Atomically sets `a = min(a, value)`; returns true if `a` changed.
#[inline]
pub fn fetch_min_u32(a: &AtomicU32, value: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while value < cur {
        match a.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

/// Atomically sets `a = max(a, value)`; returns true if `a` changed.
#[inline]
pub fn fetch_max_u32(a: &AtomicU32, value: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while value > cur {
        match a.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

/// One-shot claim: CAS `a` from `expected_empty` to `value`.
/// Returns true if this caller won the claim.
#[inline]
pub fn claim_u32(a: &AtomicU32, expected_empty: u32, value: u32) -> bool {
    a.compare_exchange(expected_empty, value, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;
    use crate::NIL;

    #[test]
    fn atomic_view_roundtrips() {
        let mut v = vec![7u32; 8];
        {
            let a = as_atomic_u32(&mut v);
            a[3].store(42, Ordering::Relaxed);
            assert_eq!(a[3].load(Ordering::Relaxed), 42);
        }
        assert_eq!(v[3], 42);
        assert_eq!(v[0], 7);
    }

    #[test]
    fn fetch_min_converges_to_global_min() {
        let pool = Pool::new(4);
        let mut cell = vec![u32::MAX];
        {
            let a = as_atomic_u32(&mut cell);
            pool.run(|ctx| {
                for i in 0..1000u32 {
                    fetch_min_u32(&a[0], i * 4 + ctx.tid() as u32);
                }
            });
        }
        assert_eq!(cell[0], 0);
    }

    #[test]
    fn fetch_max_converges_to_global_max() {
        let pool = Pool::new(4);
        let mut cell = vec![0u32];
        {
            let a = as_atomic_u32(&mut cell);
            pool.run(|ctx| {
                for i in 0..1000u32 {
                    fetch_max_u32(&a[0], i * 4 + ctx.tid() as u32);
                }
            });
        }
        assert_eq!(cell[0], 999 * 4 + 3);
    }

    #[test]
    fn exactly_one_claim_wins() {
        let pool = Pool::new(8);
        let mut cell = vec![NIL];
        let winners = std::sync::atomic::AtomicUsize::new(0);
        {
            let a = as_atomic_u32(&mut cell);
            pool.run(|ctx| {
                if claim_u32(&a[0], NIL, ctx.tid() as u32) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        assert_eq!(winners.load(Ordering::Relaxed), 1);
        assert!(cell[0] < 8);
    }

    #[test]
    fn fetch_min_reports_change() {
        let a = AtomicU32::new(10);
        assert!(fetch_min_u32(&a, 5));
        assert!(!fetch_min_u32(&a, 7));
        assert_eq!(a.load(Ordering::Relaxed), 5);
    }
}

//! The SPMD pool: run one closure on `p` threads with a shared barrier.
//!
//! Unlike fork-join frameworks, the SPMD model gives every thread the
//! whole program: threads coordinate through barriers and partition index
//! spaces among themselves. This matches the structure of the paper's
//! algorithms (graft-and-shortcut rounds, level-synchronous BFS, block
//! scans), where phases alternate between full-array parallel loops and
//! O(p) sequential stitches done by thread 0.
//!
//! The pool is **persistent**: worker threads are spawned once at
//! construction and parked between phases, so a pipeline that issues
//! dozens of [`Pool::run`] calls pays the thread-creation cost exactly
//! once (the `smp_overhead` bench quantifies the per-phase cost that
//! remains: one wake + one completion handshake).

use crate::barrier::Barrier;
use crate::telemetry::Telemetry;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// An SPMD executor with a fixed thread count.
///
/// The calling thread participates as thread 0; `p - 1` persistent
/// workers handle the rest. `Pool` is `Clone` (clones share the same
/// workers) and `run` calls are serialized internally, so a pool can be
/// stored once and used from anywhere — though *nested* `run` calls
/// from inside an SPMD closure deadlock by construction and are
/// rejected in debug builds.
pub struct Pool {
    inner: Arc<Inner>,
}

/// Shared state between the pool handle(s) and the workers.
struct Inner {
    threads: usize,
    /// Serializes concurrent `run` calls from clones.
    run_lock: Mutex<()>,
    /// Phase hand-off: generation counter + erased job packet.
    state: Mutex<PhaseState>,
    wake: Condvar,
    /// Completion count for the current phase (workers only; thread 0
    /// is the caller).
    done: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// Set when a worker's closure panicked during the current phase.
    worker_panicked: std::sync::atomic::AtomicBool,
    /// Number of live `Pool` handles (workers hold `Arc<Inner>` too, so
    /// `Arc::strong_count` cannot detect the last handle).
    handles: AtomicUsize,
    /// Optional counter sink; `None` costs one pointer test per phase.
    telemetry: Option<Arc<Telemetry>>,
}

struct PhaseState {
    generation: u64,
    /// Erased pointer to the current [`JobPacket`]; valid only for the
    /// duration of the phase (the caller blocks until all workers
    /// finish before invalidating it).
    packet: *const JobPacket<'static>,
    shutdown: bool,
}

// SAFETY: the raw packet pointer is only dereferenced by workers during
// a phase, while the issuing `run` call keeps the packet alive; access
// is ordered by the state mutex and the done handshake.
unsafe impl Send for PhaseState {}

struct JobPacket<'a> {
    f: &'a (dyn Fn(&Ctx) + Sync),
    barrier: &'a Barrier,
}

impl Pool {
    /// Creates a pool of `threads` SPMD threads. Must be >= 1.
    pub fn new(threads: usize) -> Self {
        Pool::with_telemetry(threads, None)
    }

    fn with_telemetry(threads: usize, telemetry: Option<Arc<Telemetry>>) -> Self {
        assert!(threads >= 1, "pool needs at least one thread");
        if let Some(sink) = &telemetry {
            assert_eq!(
                sink.threads(),
                threads,
                "telemetry sink sized for {} threads, pool has {threads}",
                sink.threads(),
            );
        }
        let inner = Arc::new(Inner {
            threads,
            run_lock: Mutex::new(()),
            state: Mutex::new(PhaseState {
                generation: 0,
                packet: std::ptr::null(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            done: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            worker_panicked: std::sync::atomic::AtomicBool::new(false),
            handles: AtomicUsize::new(1),
            telemetry,
        });
        for tid in 1..threads {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("bcc-smp-{tid}"))
                .spawn(move || worker_loop(&inner, tid))
                .expect("failed to spawn pool worker");
        }
        Pool { inner }
    }

    /// Starts configuring a pool (thread count, telemetry sink).
    pub fn builder() -> PoolBuilder {
        PoolBuilder {
            threads: None,
            telemetry: None,
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn machine() -> Self {
        Pool::new(Pool::default_threads())
    }

    /// The machine's available parallelism, clamped to `1..=64` so a
    /// misreported core count (containers, exotic SMPs) cannot oversubscribe
    /// the barrier's spin loops into pathology.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 64)
    }

    /// Number of SPMD threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The telemetry sink attached at construction, if any.
    #[inline]
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.inner.telemetry.as_ref()
    }

    /// Runs `f` on all threads of the pool. `f(ctx)` is invoked once per
    /// thread with a [`Ctx`] carrying the thread id and barrier.
    ///
    /// The single-threaded case runs inline with no synchronization, so
    /// `p = 1` measurements carry no threading overhead (the paper's
    /// sequential baselines are separate code paths, but the `p = 1`
    /// parallel runs should only pay *algorithmic* overhead).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(&Ctx) + Sync,
    {
        let p = self.inner.threads;
        let telem = self.inner.telemetry.as_deref();
        if let Some(t) = telem {
            t.record_run();
        }
        let barrier = Barrier::new(p);
        if p == 1 {
            let ctx = Ctx::new(0, 1, &barrier, telem);
            let start = telem.map(|_| Instant::now());
            f(&ctx);
            if let Some(t) = telem {
                let elapsed = start.unwrap().elapsed().as_nanos() as u64;
                let wait = ctx.wait_ns.get();
                t.record_thread(0, elapsed.saturating_sub(wait), wait);
                // The (trivial) end-of-phase join still counts as the
                // phase's barrier episode, so episode counts don't
                // change shape between p = 1 and p > 1.
                t.record_episode();
            }
            return;
        }

        let packet = JobPacket {
            f: &f,
            barrier: &barrier,
        };
        let _serial = self.inner.run_lock.lock().unwrap();
        self.inner.done.store(0, Ordering::Release);
        self.inner.worker_panicked.store(false, Ordering::Release);
        {
            let mut state = self.inner.state.lock().unwrap();
            debug_assert!(state.packet.is_null(), "nested Pool::run detected");
            // SAFETY (lifetime erasure): the packet outlives the phase —
            // `PhaseGuard` blocks (even during unwinding) until every
            // worker has finished before `packet` can be dropped.
            state.packet = unsafe {
                std::mem::transmute::<*const JobPacket<'_>, *const JobPacket<'static>>(
                    &packet as *const JobPacket<'_>,
                )
            };
            state.generation += 1;
            self.inner.wake.notify_all();
        }
        let phase_guard = PhaseGuard { inner: &self.inner };

        // Participate as thread 0.
        let ctx = Ctx::new(0, p, &barrier, telem);
        let start = telem.map(|_| Instant::now());
        f(&ctx);
        let closure_ns = start.map(|s| s.elapsed().as_nanos() as u64);

        let join_start = telem.map(|_| Instant::now());
        drop(phase_guard); // waits for workers, clears the packet
        if let Some(t) = telem {
            // Thread 0's wait for the stragglers is the phase's implicit
            // join barrier: bill it as barrier wait, count one episode.
            let join_ns = join_start.unwrap().elapsed().as_nanos() as u64;
            let wait = ctx.wait_ns.get();
            t.record_thread(0, closure_ns.unwrap().saturating_sub(wait), wait + join_ns);
            t.record_episode();
        }
        if self.inner.worker_panicked.load(Ordering::Acquire) {
            panic!("a pool worker panicked during Pool::run");
        }
    }

    /// Runs `f` per thread and collects each thread's return value,
    /// ordered by thread id. Useful for gathering per-thread partial
    /// results (sample sort local samples, per-thread frontier buffers).
    pub fn run_map<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&Ctx) -> R + Sync,
        R: Send,
    {
        let out: Vec<Mutex<Option<R>>> =
            (0..self.inner.threads).map(|_| Mutex::new(None)).collect();
        self.run(|ctx| {
            let r = f(ctx);
            *out[ctx.tid()].lock().unwrap() = Some(r);
        });
        out.into_iter()
            .map(|m| m.into_inner().unwrap().expect("thread produced no value"))
            .collect()
    }

    /// Applies `f` to every item of a slice under static block
    /// partitioning and returns the results in input order — the
    /// batch-execution helper behind the query engine's fan-out. `f`
    /// receives `(index, &item)`.
    ///
    /// Each thread fills its own contiguous block, so results are
    /// assembled by concatenating per-thread vectors in tid order (block
    /// ranges tile `0..items.len()` ascending); answers are therefore
    /// identical to a sequential `items.iter().map(...)` run.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let parts = self.run_map(|ctx| {
            let r = ctx.block_range(items.len());
            let start = r.start;
            items[r]
                .iter()
                .enumerate()
                .map(|(i, t)| f(start + i, t))
                .collect::<Vec<R>>()
        });
        let mut all = Vec::with_capacity(items.len());
        for p in parts {
            all.extend(p);
        }
        all
    }

    /// [`par_map`](Pool::par_map) for items of skewed cost: `weight`
    /// estimates each item's work (a vertex's degree, a query's expected
    /// fan-out) and items are handed out in dynamically scheduled chunks
    /// of roughly `budget` total weight, so one heavy item cannot strand
    /// the rest of a static block behind a single thread. Results are in
    /// input order, identical to a sequential map.
    pub fn par_map_weighted<T, R, F, W>(
        &self,
        items: &[T],
        budget: usize,
        weight: W,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        W: Fn(usize, &T) -> usize,
    {
        let work = crate::dynamic::ChunkCounter::weighted(items.len(), budget.max(1), |i| {
            weight(i, &items[i])
        });
        let parts = self.run_map(|_ctx| {
            let mut local: Vec<(usize, R)> = Vec::new();
            while let Some(r) = work.next_chunk() {
                for i in r {
                    local.push((i, f(i, &items[i])));
                }
            }
            local
        });
        // Reassemble in input order: each index was produced exactly once.
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for part in parts {
            for (i, v) in part {
                debug_assert!(out[i].is_none());
                out[i] = Some(v);
            }
        }
        out.into_iter()
            .map(|v| v.expect("weighted chunks must cover every index"))
            .collect()
    }
}

/// Blocks until all workers finish the current phase, then clears the
/// packet — runs on the normal path *and* when thread 0's closure
/// unwinds, so the erased packet pointer can never dangle.
struct PhaseGuard<'a> {
    inner: &'a Inner,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let p = self.inner.threads;
        let mut guard = self.inner.done_lock.lock().unwrap();
        while self.inner.done.load(Ordering::Acquire) != p - 1 {
            guard = self.inner.done_cv.wait(guard).unwrap();
        }
        drop(guard);
        self.inner.state.lock().unwrap().packet = std::ptr::null();
    }
}

impl Clone for Pool {
    fn clone(&self) -> Self {
        self.inner.handles.fetch_add(1, Ordering::Relaxed);
        Pool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Last *handle* shuts the workers down; the workers' own Arcs
        // keep `Inner` alive until they observe the flag and exit.
        if self.inner.handles.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut state = self.inner.state.lock().unwrap();
            state.shutdown = true;
            state.generation += 1;
            self.inner.wake.notify_all();
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::machine()
    }
}

fn worker_loop(inner: &Inner, tid: usize) {
    let mut seen_generation = 0u64;
    loop {
        // Wait for the next phase (or shutdown).
        let packet: *const JobPacket<'static>;
        {
            let mut state = inner.state.lock().unwrap();
            while state.generation == seen_generation && !state.shutdown {
                state = inner.wake.wait(state).unwrap();
            }
            if state.shutdown {
                return;
            }
            seen_generation = state.generation;
            packet = state.packet;
        }
        if packet.is_null() {
            continue; // spurious (e.g. shutdown bump raced)
        }
        // SAFETY: the issuing `run` keeps the packet alive until every
        // worker has bumped `done` below.
        let packet = unsafe { &*packet };
        let telem = inner.telemetry.as_deref();
        let ctx = Ctx::new(tid, inner.threads, packet.barrier, telem);
        let start = telem.map(|_| Instant::now());
        // Catch panics so a failing closure cannot wedge the handshake.
        // (A panic while *other* threads wait on an in-closure barrier
        // still deadlocks them — inherent to barrier programs, same as
        // the pthreads original.)
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (packet.f)(&ctx))).is_err() {
            inner.worker_panicked.store(true, Ordering::Release);
        }
        if let Some(t) = telem {
            let elapsed = start.unwrap().elapsed().as_nanos() as u64;
            let wait = ctx.wait_ns.get();
            t.record_thread(tid, elapsed.saturating_sub(wait), wait);
        }
        // Signal completion.
        let _g = inner.done_lock.lock().unwrap();
        inner.done.fetch_add(1, Ordering::AcqRel);
        inner.done_cv.notify_one();
    }
}

/// Configures a [`Pool`] before construction.
///
/// ```
/// use bcc_smp::{Pool, Telemetry};
/// use std::sync::Arc;
///
/// let sink = Arc::new(Telemetry::new(2));
/// let pool = Pool::builder().threads(2).telemetry(sink.clone()).build();
/// pool.run(|_| {});
/// assert_eq!(sink.snapshot().phase_runs, 1);
/// ```
pub struct PoolBuilder {
    threads: Option<usize>,
    telemetry: Option<Arc<Telemetry>>,
}

impl PoolBuilder {
    /// Sets the SPMD thread count (default: [`Pool::default_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a counter sink. Must be sized for the pool's thread
    /// count ([`Telemetry::new`] with the same `threads`).
    pub fn telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Spawns the pool.
    ///
    /// # Panics
    ///
    /// If a telemetry sink was attached whose [`Telemetry::threads`]
    /// disagrees with the pool's thread count.
    pub fn build(self) -> Pool {
        let threads = self.threads.unwrap_or_else(Pool::default_threads);
        Pool::with_telemetry(threads, self.telemetry)
    }
}

/// Per-thread execution context handed to SPMD closures.
pub struct Ctx<'a> {
    tid: usize,
    threads: usize,
    barrier: &'a Barrier,
    sense: Cell<bool>,
    /// Phase-local barrier-wait accumulator, flushed to `telem` by the
    /// thread that owns this context once its closure returns.
    wait_ns: Cell<u64>,
    telem: Option<&'a Telemetry>,
}

impl<'a> Ctx<'a> {
    fn new(tid: usize, threads: usize, barrier: &'a Barrier, telem: Option<&'a Telemetry>) -> Self {
        Ctx {
            tid,
            threads,
            barrier,
            sense: Cell::new(false),
            wait_ns: Cell::new(0),
            telem,
        }
    }

    /// This thread's id in `0..threads`.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Total number of SPMD threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True for thread 0, which performs the O(p) sequential stitches.
    #[inline]
    pub fn is_leader(&self) -> bool {
        self.tid == 0
    }

    /// Waits until every thread of the pool reaches this barrier.
    /// Returns `true` on exactly one thread per episode.
    #[inline]
    pub fn barrier(&self) -> bool {
        let mut sense = self.sense.get();
        let leader = match self.telem {
            None => self.barrier.wait(&mut sense),
            Some(t) => {
                let start = Instant::now();
                let leader = self.barrier.wait(&mut sense);
                self.wait_ns
                    .set(self.wait_ns.get() + start.elapsed().as_nanos() as u64);
                if leader {
                    t.record_episode();
                }
                leader
            }
        };
        self.sense.set(sense);
        leader
    }

    /// The contiguous block of `0..n` owned by this thread under static
    /// block partitioning: blocks differ in size by at most one element.
    #[inline]
    pub fn block_range(&self, n: usize) -> Range<usize> {
        block_range(self.tid, self.threads, n)
    }

    /// Block partition of an arbitrary range.
    #[inline]
    pub fn block_range_of(&self, range: Range<usize>) -> Range<usize> {
        let n = range.end - range.start;
        let r = self.block_range(n);
        range.start + r.start..range.start + r.end
    }

    /// Iterates this thread's indices under a strided (cyclic) partition,
    /// `tid, tid + p, tid + 2p, ...` — useful when per-index cost varies
    /// systematically across the range.
    #[inline]
    pub fn strided(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (self.tid..n).step_by(self.threads)
    }
}

/// Static block partition: thread `tid` of `threads` owns this subrange
/// of `0..n`. The first `n % threads` blocks get one extra element.
#[inline]
pub fn block_range(tid: usize, threads: usize, n: usize) -> Range<usize> {
    debug_assert!(tid < threads);
    let base = n / threads;
    let extra = n % threads;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn block_ranges_tile_exactly() {
        for threads in 1..=9 {
            for n in [0usize, 1, 2, 7, 64, 100, 101] {
                let mut covered = vec![false; n];
                let mut prev_end = 0;
                for tid in 0..threads {
                    let r = block_range(tid, threads, n);
                    assert_eq!(r.start, prev_end, "blocks must be contiguous");
                    prev_end = r.end;
                    for i in r {
                        assert!(!covered[i]);
                        covered[i] = true;
                    }
                }
                assert_eq!(prev_end, n);
                assert!(covered.into_iter().all(|c| c));
            }
        }
    }

    #[test]
    fn block_sizes_balanced() {
        for threads in 1..=8 {
            for n in [1usize, 5, 16, 33, 1000] {
                let sizes: Vec<usize> = (0..threads)
                    .map(|t| block_range(t, threads, n).len())
                    .collect();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1, "p={threads} n={n}: {sizes:?}");
            }
        }
    }

    #[test]
    fn run_visits_every_tid_once() {
        let pool = Pool::new(5);
        let visits = [const { AtomicUsize::new(0) }; 5];
        pool.run(|ctx| {
            visits[ctx.tid()].fetch_add(1, Ordering::Relaxed);
            assert_eq!(ctx.threads(), 5);
        });
        for v in &visits {
            assert_eq!(v.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn run_map_orders_by_tid() {
        let pool = Pool::new(6);
        let got = pool.run_map(|ctx| ctx.tid() * 10);
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        for p in [1, 3, 4, 7] {
            let pool = Pool::new(p);
            let items: Vec<u64> = (0..1013).collect();
            let got = pool.par_map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let want: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn par_map_empty_and_fewer_items_than_threads() {
        let pool = Pool::new(6);
        assert_eq!(pool.par_map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[9u32, 4], |_, &x| x + 1), vec![10, 5]);
    }

    #[test]
    fn par_map_weighted_matches_sequential_map_under_skew() {
        for p in [1, 4] {
            let pool = Pool::new(p);
            // Star-like skew: item 0 carries almost all the weight.
            let items: Vec<u64> = (0..997).collect();
            let got = pool.par_map_weighted(
                &items,
                64,
                |i, _| if i == 0 { 10_000 } else { 1 },
                |i, &x| {
                    assert_eq!(i as u64, x);
                    x * 7 + 2
                },
            );
            let want: Vec<u64> = items.iter().map(|&x| x * 7 + 2).collect();
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn par_map_weighted_empty_and_non_copy_results() {
        let pool = Pool::new(3);
        assert_eq!(
            pool.par_map_weighted(&[] as &[u32], 8, |_, _| 1, |_, &x| x),
            Vec::<u32>::new()
        );
        let got = pool.par_map_weighted(&[1u32, 2, 3], 1, |_, &x| x as usize, |_, &x| vec![x; 2]);
        assert_eq!(got, vec![vec![1, 1], vec![2, 2], vec![3, 3]]);
    }

    #[test]
    fn many_phases_reuse_the_same_workers() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500 * 4);
    }

    #[test]
    fn borrowed_data_flows_into_phases() {
        let pool = Pool::new(3);
        let data: Vec<usize> = (0..999).collect();
        let total = AtomicUsize::new(0);
        pool.run(|ctx| {
            let r = ctx.block_range(data.len());
            let local: usize = data[r].iter().sum();
            total.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 998 / 2);
    }

    #[test]
    fn clones_share_workers_and_serialize() {
        let pool = Pool::new(4);
        let clone = pool.clone();
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..50 {
                    pool.run(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            s.spawn(|| {
                for _ in 0..50 {
                    clone.run(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100 * 4);
    }

    #[test]
    fn drop_shuts_workers_down() {
        // Workers hold the only remaining Arcs after the handle drops;
        // observe them exit via a Weak reference.
        for _ in 0..20 {
            let pool = Pool::new(3);
            pool.run(|_| {});
            let weak = Arc::downgrade(&pool.inner);
            drop(pool);
            let mut spins = 0u32;
            while weak.strong_count() > 0 {
                assert!(spins < 2_000_000, "workers failed to shut down");
                crate::barrier::backoff(&mut spins);
            }
        }
    }

    #[test]
    fn clone_keeps_workers_alive_until_last_handle() {
        let pool = Pool::new(2);
        let clone = pool.clone();
        drop(pool);
        // Still fully functional through the clone.
        let hits = AtomicUsize::new(0);
        clone.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn barriers_synchronize_phases() {
        let pool = Pool::new(4);
        let n = 1024;
        let mut a: Vec<usize> = (0..n).collect();
        let mut b = vec![0usize; n];
        {
            let a_s = crate::shared::SharedSlice::new(&mut a);
            let b_s = crate::shared::SharedSlice::new(&mut b);
            pool.run(|ctx| {
                // Phase 1: b[i] = a[i] * 2 on own block.
                for i in ctx.block_range(n) {
                    unsafe { b_s.write(i, a_s.get(i) * 2) };
                }
                ctx.barrier();
                // Phase 2: a[i] = b[(i + 1) % n] — reads another block's
                // writes, valid only because of the barrier.
                for i in ctx.block_range(n) {
                    unsafe { a_s.write(i, b_s.get((i + 1) % n)) };
                }
            });
        }
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, ((i + 1) % n) * 2);
        }
    }

    #[test]
    fn strided_partition_covers_all() {
        let pool = Pool::new(3);
        let hits = [const { AtomicUsize::new(0) }; 17];
        pool.run(|ctx| {
            for i in ctx.strided(17) {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn leader_is_unique_per_barrier_episode() {
        let pool = Pool::new(4);
        let leaders = AtomicUsize::new(0);
        pool.run(|ctx| {
            for _ in 0..32 {
                if ctx.barrier() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn telemetry_records_one_barrier_entry_per_run() {
        for p in [1, 4] {
            let sink = Arc::new(Telemetry::new(p));
            let pool = Pool::builder()
                .threads(p)
                .telemetry(Arc::clone(&sink))
                .build();
            for _ in 0..10 {
                pool.run(|_| {});
            }
            let snap = sink.snapshot();
            assert_eq!(snap.phase_runs, 10, "p={p}");
            assert_eq!(
                snap.barrier_episodes, 10,
                "p={p}: each run's join is exactly one episode"
            );
        }
    }

    #[test]
    fn telemetry_counts_explicit_barrier_episodes() {
        let p = 3;
        let sink = Arc::new(Telemetry::new(p));
        let pool = Pool::builder()
            .threads(p)
            .telemetry(Arc::clone(&sink))
            .build();
        for _ in 0..5 {
            pool.run(|ctx| {
                ctx.barrier();
                ctx.barrier();
                ctx.barrier();
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.phase_runs, 5);
        // 3 explicit episodes + the implicit join, per run.
        assert_eq!(snap.barrier_episodes, 5 * 4);
    }

    #[test]
    fn telemetry_sees_skew_as_wait_and_imbalance() {
        let p = 2;
        let sink = Arc::new(Telemetry::new(p));
        let pool = Pool::builder()
            .threads(p)
            .telemetry(Arc::clone(&sink))
            .build();
        pool.run(|ctx| {
            if ctx.tid() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            ctx.barrier();
        });
        let snap = sink.snapshot();
        // Thread 1 worked ~20ms; thread 0 waited for it at the barrier.
        assert!(
            snap.busy[1] >= std::time::Duration::from_millis(15),
            "sleeping thread's busy time: {:?}",
            snap.busy
        );
        assert!(
            snap.barrier_wait[0] >= std::time::Duration::from_millis(10),
            "idle thread's barrier wait: {:?}",
            snap.barrier_wait
        );
        assert!(snap.imbalance() > 1.2, "imbalance: {}", snap.imbalance());
    }

    #[test]
    fn pools_without_telemetry_have_none() {
        let pool = Pool::new(2);
        assert!(pool.telemetry().is_none());
        let built = Pool::builder().threads(2).build();
        assert!(built.telemetry().is_none());
    }

    #[test]
    fn builder_defaults_match_machine() {
        let pool = Pool::builder().build();
        assert_eq!(pool.threads(), Pool::default_threads());
        assert!(Pool::default_threads() >= 1);
        assert!(Pool::default_threads() <= 64);
    }

    #[test]
    #[should_panic(expected = "telemetry sink sized for")]
    fn builder_rejects_mismatched_sink() {
        let sink = Arc::new(Telemetry::new(3));
        let _ = Pool::builder().threads(2).telemetry(sink).build();
    }

    #[test]
    fn panics_propagate_worker_free() {
        // A panic on thread 0 (the caller) must not wedge the pool.
        let pool = Pool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|_| panic!("boom"));
        }));
        assert!(result.is_err());
        // Pool still usable afterwards at p = 1.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }
}

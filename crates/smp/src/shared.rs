//! Disjoint-write shared slices for SPMD phases.
//!
//! The paper's C implementation shares arrays freely among threads and
//! relies on the algorithm to keep writes disjoint between barriers. Rust
//! needs that contract spelled out: [`SharedSlice`] wraps a `&mut [T]` as
//! a `Sync` view whose `write` is `unsafe`, with the documented invariant
//! that between two barrier episodes each index is written by at most one
//! thread, and no thread reads an index another thread writes.
//!
//! This is the standard idiom for bulk-synchronous array algorithms; all
//! call sites in this workspace write block-partitioned or otherwise
//! owner-computed disjoint index sets.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A `Sync` view over a mutable slice allowing disjoint concurrent writes.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a UnsafeCell<[T]>>,
}

// SAFETY: all mutation goes through `unsafe fn write`, whose contract
// requires disjointness between synchronization points; reads of
// locations concurrently written are likewise forbidden by that contract.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T: Copy> SharedSlice<'a, T> {
    /// Wraps a mutable slice. The borrow keeps the underlying storage
    /// alive and exclusively reserved for this view's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// Safe under the view's contract: a location being read is not
    /// concurrently written this phase. (A racy read would be UB; the
    /// contract forbids it, and call sites uphold it structurally via
    /// block partitioning + barriers.)
    #[inline]
    pub fn get(&self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// Between the previous and next barrier episode, no other thread may
    /// read or write index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        unsafe { *self.ptr.add(i) = value };
    }

    /// Returns a raw subslice view `[start, end)` for bulk operations.
    ///
    /// # Safety
    ///
    /// The same disjointness contract as [`SharedSlice::write`] applies to
    /// every element of the returned slice for as long as it is held.
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &'a mut [T] {
        assert!(start <= end && end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

impl<T: Copy> Clone for SharedSlice<'_, T> {
    fn clone(&self) -> Self {
        SharedSlice {
            ptr: self.ptr,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn disjoint_parallel_writes_land() {
        let pool = Pool::new(4);
        let n = 1000;
        let mut v = vec![0u32; n];
        {
            let s = SharedSlice::new(&mut v);
            pool.run(|ctx| {
                for i in ctx.block_range(n) {
                    unsafe { s.write(i, i as u32 + 1) };
                }
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut v = vec![0u32; 4];
        let s = SharedSlice::new(&mut v);
        let _ = s.get(4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut v = vec![0u32; 4];
        let s = SharedSlice::new(&mut v);
        unsafe { s.write(9, 1) };
    }

    #[test]
    fn slice_mut_gives_disjoint_chunks() {
        let pool = Pool::new(3);
        let n = 31;
        let mut v = vec![0u8; n];
        {
            let s = SharedSlice::new(&mut v);
            pool.run(|ctx| {
                let r = ctx.block_range(n);
                let chunk = unsafe { s.slice_mut(r.start, r.end) };
                chunk.fill(ctx.tid() as u8 + 1);
            });
        }
        assert!(v.iter().all(|&x| x >= 1));
    }
}

//! Process peak-RSS measurement for the space-efficiency experiments.
//!
//! The out-of-core ingestion work (ROADMAP item 2) claims that building
//! an index from a mapped `.bccsr` file avoids the 2× in-memory
//! materialization spike; `peak_rss_bytes` in each bench cell is how
//! that claim is *measured* rather than asserted. On Linux the kernel
//! tracks a per-process resident high-water mark (`VmHWM` in
//! `/proc/self/status`) and allows resetting it by writing `5` to
//! `/proc/self/clear_refs`, which gives a per-trial peak:
//!
//! ```
//! let _ = bcc_smp::rss::reset_peak();
//! // ... the work being measured ...
//! let peak = bcc_smp::rss::peak_rss_bytes(); // None off Linux
//! ```
//!
//! Page-cache pages backing a shared file mapping *do* count toward
//! RSS while resident, but they are reclaimable and never duplicated —
//! the measured bound for a from-disk build is therefore file size +
//! working arrays, not 2× the graph.
//!
//! Off Linux both calls are graceful no-ops returning `None`/`Err`, and
//! the bench harness omits the field.

use std::io;

/// The process's peak resident set size in bytes since start (or since
/// the last successful [`reset_peak`]). `None` when the platform does
/// not expose it (anything but Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// The process's current resident set size in bytes, if available.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Resets the kernel's peak-RSS watermark to the current RSS so the
/// next [`peak_rss_bytes`] reflects only work done after this call.
/// Fails off Linux or where `/proc/self/clear_refs` is restricted.
pub fn reset_peak() -> io::Result<()> {
    std::fs::write("/proc/self/clear_refs", b"5")
}

fn read_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(not(target_os = "linux"), ignore)]
    fn peak_tracks_allocation_after_reset() {
        reset_peak().expect("clear_refs writable");
        let before = peak_rss_bytes().expect("VmHWM present");
        // Touch 32 MiB so the watermark must move well past noise.
        let mut v = vec![0u8; 32 << 20];
        for i in (0..v.len()).step_by(4096) {
            v[i] = 1;
        }
        let after = peak_rss_bytes().expect("VmHWM present");
        assert!(
            after >= before + (24 << 20),
            "peak {after} did not rise over {before} after touching 32 MiB"
        );
        drop(v);
    }

    #[test]
    fn current_rss_is_positive_when_available() {
        if let Some(rss) = current_rss_bytes() {
            assert!(rss > 0);
        }
    }
}

//! Reusable-buffer arena for allocation-free steady-state runs.
//!
//! Every phase of the Tarjan–Vishkin pipeline works over dense arrays
//! sized by `n`, `m`, or `2(n-1)`; a fresh run heap-allocates each of
//! them and frees them minutes of CPU time later. On SMPs the cost is
//! not the `malloc` bookkeeping itself but the page faults and cache
//! misses of first-touching cold memory every run — repeated-run
//! workloads (benchmark trials, [`IndexStore`]-style rebuilds) pay it
//! every time. [`BccWorkspace`] is a typed free-list arena: callers
//! [`take`](BccWorkspace::take) a `Vec<T>` with at least the capacity
//! they need and [`give`](BccWorkspace::give) it back when the phase is
//! done, so a second run of the same or smaller graph is served entirely
//! from warm, already-faulted buffers.
//!
//! Design points:
//!
//! * **Typed shelves.** Buffers are shelved by element type
//!   (`TypeId` of `Vec<T>`), so a `Vec<u32>` can never be handed out as
//!   a `Vec<Edge>`. No `unsafe`, no lifetime ties: the arena hands out
//!   plain owned `Vec`s.
//! * **Size-classed service.** A `take(min_cap)` returns the *smallest*
//!   shelved buffer with `capacity >= min_cap` (best-fit), so one big
//!   buffer does not get burned on a tiny request. Misses round the
//!   fresh allocation up to the next power of two, which makes
//!   moderately-growing workloads converge onto a stable set of
//!   capacities.
//! * **Telemetry.** Hit/miss counts and byte counters
//!   ([`WorkspaceStats`]) let the pipeline report `alloc_bytes` and
//!   `arena_hit_rate` per run; the steady-state tests assert a literal
//!   zero-miss second run.
//! * **Thread-safe.** A single `Mutex` guards the shelves; pipeline
//!   phases take a handful of buffers per run (not per element), so the
//!   lock is contended a few dozen times per run at most. Pool threads
//!   may take/give their own per-thread scratch directly.
//!
//! [`IndexStore`]: https://en.wikipedia.org/wiki/Memoization

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One shelved buffer: its capacity (in elements), its capacity in
/// bytes (so [`BccWorkspace::trim`] can budget across types), and the
/// type-erased `Vec<T>` itself (always empty — `give` clears before
/// shelving).
struct ShelfEntry {
    cap: usize,
    bytes: usize,
    buf: Box<dyn Any + Send>,
}

/// A reusable-buffer arena for the BCC pipeline.
///
/// ```
/// use bcc_smp::BccWorkspace;
///
/// let ws = BccWorkspace::new();
/// let mut a: Vec<u32> = ws.take(100);
/// a.extend(0..100);
/// ws.give(a);
///
/// let b: Vec<u32> = ws.take(50); // served from the shelf: a hit
/// assert!(b.capacity() >= 50 && b.is_empty());
/// let s = ws.stats();
/// assert_eq!((s.hits, s.misses), (1, 1));
/// ```
#[derive(Default)]
pub struct BccWorkspace {
    shelves: Mutex<HashMap<TypeId, Vec<ShelfEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_allocated: AtomicU64,
    bytes_served: AtomicU64,
}

impl BccWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a `Vec<T>` with `capacity >= min_cap` and `len == 0`.
    ///
    /// Served best-fit from the shelf when possible (a *hit*);
    /// otherwise freshly allocated with capacity rounded up to the next
    /// power of two (a *miss*). Zero-capacity requests are free and do
    /// not touch the shelves or the counters.
    pub fn take<T: Send + 'static>(&self, min_cap: usize) -> Vec<T> {
        if min_cap == 0 || std::mem::size_of::<T>() == 0 {
            return Vec::new();
        }
        let key = TypeId::of::<Vec<T>>();
        {
            let mut shelves = self.shelves.lock().unwrap();
            if let Some(entries) = shelves.get_mut(&key) {
                let mut best: Option<usize> = None;
                for (i, e) in entries.iter().enumerate() {
                    if e.cap >= min_cap && best.is_none_or(|b| e.cap < entries[b].cap) {
                        best = Some(i);
                    }
                }
                if let Some(i) = best {
                    let entry = entries.swap_remove(i);
                    drop(shelves);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.bytes_served.fetch_add(
                        (entry.cap * std::mem::size_of::<T>()) as u64,
                        Ordering::Relaxed,
                    );
                    let v = *entry
                        .buf
                        .downcast::<Vec<T>>()
                        .expect("workspace shelf holds a mistyped buffer");
                    debug_assert!(v.is_empty() && v.capacity() >= min_cap);
                    return v;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cap = min_cap.checked_next_power_of_two().unwrap_or(min_cap);
        self.bytes_allocated
            .fetch_add((cap * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
        Vec::with_capacity(cap)
    }

    /// Takes a `Vec<T>` of exactly `len` elements, all equal to `fill`.
    ///
    /// Shorthand for [`take`](Self::take) + `resize`, the pattern for
    /// the pipeline's `vec![init; n]` buffers.
    pub fn take_filled<T: Clone + Send + 'static>(&self, len: usize, fill: T) -> Vec<T> {
        let mut v = self.take(len);
        v.resize(len, fill);
        v
    }

    /// Takes a `Vec<u32>` holding `0, 1, …, len-1` — the pipeline's
    /// identity-label initialization (`(0..n).collect()`).
    pub fn take_iota(&self, len: usize) -> Vec<u32> {
        let mut v = self.take(len);
        v.extend(0..len as u32);
        v
    }

    /// Returns a buffer to the arena for reuse.
    ///
    /// The buffer is cleared (element destructors run now) and shelved
    /// under its capacity. Zero-capacity buffers are dropped.
    pub fn give<T: Send + 'static>(&self, mut v: Vec<T>) {
        if v.capacity() == 0 || std::mem::size_of::<T>() == 0 {
            return;
        }
        v.clear();
        let cap = v.capacity();
        let key = TypeId::of::<Vec<T>>();
        let mut shelves = self.shelves.lock().unwrap();
        shelves.entry(key).or_default().push(ShelfEntry {
            cap,
            bytes: cap * std::mem::size_of::<T>(),
            buf: Box::new(v),
        });
    }

    /// A snapshot of the hit/miss and byte counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters to zero (the shelves keep their buffers).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_allocated.store(0, Ordering::Relaxed);
        self.bytes_served.store(0, Ordering::Relaxed);
    }

    /// Number of buffers currently shelved (all types).
    pub fn shelved_buffers(&self) -> usize {
        self.shelves.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Total bytes of capacity currently shelved (all types). Buffers
    /// that are out on loan are not counted.
    pub fn shelved_bytes(&self) -> usize {
        self.shelves
            .lock()
            .unwrap()
            .values()
            .flatten()
            .map(|e| e.bytes)
            .sum()
    }

    /// Drops the largest shelved buffers (across all types) until at
    /// most `max_bytes` of capacity remain shelved.
    ///
    /// A long-lived arena shelves buffers sized by the *largest* job it
    /// ever served — after one whole-graph build, an index store whose
    /// incremental commits only need region-sized scratch would pin the
    /// full-graph buffers forever. `trim(0)` is equivalent to
    /// [`clear`](Self::clear); smaller budgets keep the small, hot
    /// buffers and release the oversized cold ones.
    pub fn trim(&self, max_bytes: usize) {
        let mut shelves = self.shelves.lock().unwrap();
        let mut total: usize = shelves.values().flatten().map(|e| e.bytes).sum();
        while total > max_bytes {
            let (key, idx, bytes) = shelves
                .iter()
                .flat_map(|(k, entries)| {
                    entries
                        .iter()
                        .enumerate()
                        .map(move |(i, e)| (*k, i, e.bytes))
                })
                .max_by_key(|&(_, _, b)| b)
                .expect("total > 0 implies a shelved entry exists");
            shelves.get_mut(&key).unwrap().swap_remove(idx);
            total -= bytes;
        }
        shelves.retain(|_, entries| !entries.is_empty());
    }

    /// Drops every shelved buffer, releasing the memory to the system.
    pub fn clear(&self) {
        self.shelves.lock().unwrap().clear();
    }
}

impl std::fmt::Debug for BccWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BccWorkspace")
            .field("shelved_buffers", &self.shelved_buffers())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Point-in-time counters of a [`BccWorkspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// `take` calls served from the shelf.
    pub hits: u64,
    /// `take` calls that had to heap-allocate.
    pub misses: u64,
    /// Bytes freshly allocated by misses.
    pub bytes_allocated: u64,
    /// Bytes of capacity served by hits.
    pub bytes_served: u64,
}

impl WorkspaceStats {
    /// Fraction of takes served from the shelf; `1.0` when there were
    /// no takes at all (an idle arena misses nothing).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter increments since `earlier` (same workspace, earlier
    /// snapshot).
    pub fn delta_since(&self, earlier: &WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            bytes_allocated: self.bytes_allocated - earlier.bytes_allocated,
            bytes_served: self.bytes_served - earlier.bytes_served,
        }
    }
}

/// `vec![fill; len]`, arena-served when `ws` is set.
///
/// The pipeline threads an `Option<&BccWorkspace>` through its
/// internals (the public API defaults to `None` = plain allocation);
/// these free helpers keep that threading to one line per buffer.
pub fn alloc_filled<T: Clone + Send + 'static>(
    ws: Option<&BccWorkspace>,
    len: usize,
    fill: T,
) -> Vec<T> {
    match ws {
        Some(ws) => ws.take_filled(len, fill),
        None => vec![fill; len],
    }
}

/// An empty `Vec` with `capacity >= cap`, arena-served when `ws` is
/// set.
pub fn alloc_cap<T: Send + 'static>(ws: Option<&BccWorkspace>, cap: usize) -> Vec<T> {
    match ws {
        Some(ws) => ws.take(cap),
        None => Vec::with_capacity(cap),
    }
}

/// `0..len as u32` collected, arena-served when `ws` is set.
pub fn alloc_iota(ws: Option<&BccWorkspace>, len: usize) -> Vec<u32> {
    match ws {
        Some(ws) => ws.take_iota(len),
        None => (0..len as u32).collect(),
    }
}

/// Returns `v` to the arena when `ws` is set; drops it otherwise.
pub fn give_opt<T: Send + 'static>(ws: Option<&BccWorkspace>, v: Vec<T>) {
    if let Some(ws) = ws {
        ws.give(v);
    }
}

/// A counting wrapper around the system allocator, for steady-state
/// allocation tests.
///
/// Install it as the `#[global_allocator]` of a *dedicated* test binary
/// (one `#[test]` per binary — `cargo test` runs tests inside one
/// binary concurrently, which would pollute the counters):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bcc_smp::CountingAlloc = bcc_smp::CountingAlloc::new();
/// ```
///
/// The counters are process-global statics, so the type is a unit
/// struct and the accessors are associated functions.
pub struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);

impl CountingAlloc {
    /// A new counting allocator (counters are global, not per-value).
    pub const fn new() -> Self {
        CountingAlloc
    }

    /// Total number of allocation calls (alloc + realloc) so far.
    pub fn allocations() -> usize {
        ALLOC_CALLS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator so far.
    pub fn allocated_bytes() -> usize {
        ALLOC_BYTES.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation verbatim to `System`; the counter
// updates are atomic and have no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_is_a_hit() {
        let ws = BccWorkspace::new();
        let mut v: Vec<u32> = ws.take(1000);
        assert!(v.capacity() >= 1000 && v.is_empty());
        v.extend(0..1000);
        let cap = v.capacity();
        ws.give(v);
        assert_eq!(ws.shelved_buffers(), 1);

        let w: Vec<u32> = ws.take(512);
        assert!(w.is_empty(), "give must clear the buffer");
        assert_eq!(w.capacity(), cap);
        let s = ws.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.bytes_served >= 512 * 4);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        let ws = BccWorkspace::new();
        let small: Vec<u64> = ws.take(100);
        let big: Vec<u64> = ws.take(10_000);
        let (small_cap, big_cap) = (small.capacity(), big.capacity());
        assert!(small_cap < big_cap);
        ws.give(big);
        ws.give(small);
        let got: Vec<u64> = ws.take(50);
        assert_eq!(
            got.capacity(),
            small_cap,
            "best fit must pick the small shelf"
        );
        let got_big: Vec<u64> = ws.take(5_000);
        assert_eq!(got_big.capacity(), big_cap);
        assert_eq!(ws.stats().misses, 2);
        assert_eq!(ws.stats().hits, 2);
    }

    #[test]
    fn shelves_are_typed() {
        let ws = BccWorkspace::new();
        let v: Vec<u32> = ws.take(64);
        ws.give(v);
        // Same byte size per element, different type: must miss.
        let _f: Vec<f32> = ws.take(64);
        let s = ws.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }

    #[test]
    fn zero_capacity_requests_are_free() {
        let ws = BccWorkspace::new();
        let v: Vec<u32> = ws.take(0);
        assert_eq!(v.capacity(), 0);
        ws.give(v);
        assert_eq!(ws.shelved_buffers(), 0);
        assert_eq!(ws.stats(), WorkspaceStats::default());
    }

    #[test]
    fn take_filled_and_iota() {
        let ws = BccWorkspace::new();
        let v = ws.take_filled(5, 7u32);
        assert_eq!(v, vec![7; 5]);
        ws.give(v);
        let v = ws.take_iota(5);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert_eq!(ws.stats().hits, 1);
    }

    #[test]
    fn grow_shrink_sequence_converges() {
        let ws = BccWorkspace::new();
        for n in [100usize, 1000, 500, 1000, 100] {
            let v: Vec<u32> = ws.take(n);
            ws.give(v);
        }
        // After the 1000-cap buffer exists every smaller take hits.
        let s = ws.stats();
        assert_eq!(s.misses, 2, "only 100 and 1000 should miss");
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn stats_delta_and_reset() {
        let ws = BccWorkspace::new();
        let before = ws.stats();
        let v: Vec<u32> = ws.take(10);
        ws.give(v);
        let _v2: Vec<u32> = ws.take(10);
        let d = ws.stats().delta_since(&before);
        assert_eq!((d.hits, d.misses), (1, 1));
        assert!((d.hit_rate() - 0.5).abs() < 1e-12);
        ws.reset_stats();
        assert_eq!(ws.stats(), WorkspaceStats::default());
        assert_eq!(ws.stats().hit_rate(), 1.0);
    }

    #[test]
    fn shelved_bytes_track_capacity() {
        let ws = BccWorkspace::new();
        let a: Vec<u32> = ws.take(1000); // rounded to 1024 elements
        let b: Vec<u64> = ws.take(100); // rounded to 128 elements
        assert_eq!(ws.shelved_bytes(), 0, "loaned buffers are not shelved");
        let expect = a.capacity() * 4 + b.capacity() * 8;
        ws.give(a);
        ws.give(b);
        assert_eq!(ws.shelved_bytes(), expect);
        ws.clear();
        assert_eq!(ws.shelved_bytes(), 0);
    }

    #[test]
    fn trim_drops_largest_buffers_first() {
        let ws = BccWorkspace::new();
        let small: Vec<u32> = ws.take(64);
        let mid: Vec<u32> = ws.take(1024);
        let big: Vec<u32> = ws.take(1 << 16);
        let (small_bytes, mid_bytes) = (small.capacity() * 4, mid.capacity() * 4);
        ws.give(small);
        ws.give(mid);
        ws.give(big);
        // Budget for small + mid: exactly the big buffer goes.
        ws.trim(small_bytes + mid_bytes);
        assert_eq!(ws.shelved_buffers(), 2);
        assert_eq!(ws.shelved_bytes(), small_bytes + mid_bytes);
        // A zero budget empties the arena like clear().
        ws.trim(0);
        assert_eq!(ws.shelved_buffers(), 0);
        // Trimming an empty arena is a no-op.
        ws.trim(0);
        assert_eq!(ws.shelved_bytes(), 0);
    }

    #[test]
    fn trim_within_budget_keeps_everything() {
        let ws = BccWorkspace::new();
        let v: Vec<u32> = ws.take(100);
        ws.give(v);
        let before = ws.shelved_bytes();
        ws.trim(usize::MAX);
        assert_eq!(ws.shelved_bytes(), before);
        assert_eq!(ws.shelved_buffers(), 1);
    }

    #[test]
    fn concurrent_takes_from_pool_threads() {
        use crate::pool::Pool;
        let ws = BccWorkspace::new();
        let pool = Pool::new(4);
        pool.run(|ctx| {
            for _ in 0..10 {
                let mut v: Vec<u32> = ws.take(256);
                v.push(ctx.tid() as u32);
                ws.give(v);
            }
        });
        let s = ws.stats();
        assert_eq!(s.hits + s.misses, 40);
        assert!(s.misses <= 4, "at most one cold buffer per thread");
    }
}

//! A bounded MPMC work queue with a shutdown signal.
//!
//! The serving layer (`bcc-serve`) needs one ingredient the SPMD
//! [`Pool`](crate::Pool) deliberately does not provide: a
//! multi-producer multi-consumer channel where *independent* threads
//! pull work items at their own pace — readers draining query jobs,
//! one writer draining edge updates. [`MpmcQueue`] is that channel:
//!
//! * **Bounded.** [`push`](MpmcQueue::push) blocks while the queue is
//!   at capacity, which is exactly the backpressure a closed-loop
//!   driver wants; [`try_push`](MpmcQueue::try_push) refuses instead.
//! * **Shutdown as data.** [`close`](MpmcQueue::close) marks the queue
//!   closed and wakes every sleeper. Producers fail fast from then on;
//!   consumers first drain what was already queued, then observe the
//!   close ([`pop`](MpmcQueue::pop) returns `None`). A worker loop is
//!   simply `while let Some(job) = q.pop() { ... }` — no sentinel
//!   items, no poison values.
//! * **Timed waits.** [`pop_timeout`](MpmcQueue::pop_timeout) lets a
//!   batching consumer (the serve writer thread) wait *up to* its
//!   flush deadline and distinguish "nothing yet" from "closed".
//!
//! The implementation is a `Mutex<VecDeque>` with two condvars — the
//! textbook bounded buffer. For the serve workloads the critical
//! section is push/pop of one small item, so the lock hold time is
//! tens of nanoseconds; fairness and simplicity beat a lock-free ring
//! here, and the queue never touches the SPMD barrier machinery.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a [`MpmcQueue::try_push`] refused an item. Carrying the item
/// back distinguishes "no room right now" (retry, shed, or block) from
/// "closed forever" (give up) — the serving layer's admission control
/// needs that distinction to hand producers a typed rejection instead
/// of a silent drop.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item comes back unqueued.
    Full(T),
    /// The queue is closed; no push will ever succeed again.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// The refused item, whichever way it was refused.
    pub fn into_item(self) -> T {
        match self {
            TryPushError::Full(t) | TryPushError::Closed(t) => t,
        }
    }
}

/// Result of a [`MpmcQueue::pop_timeout`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still open and empty.
    TimedOut,
    /// The queue is closed and fully drained; no item will ever come.
    Closed,
}

impl<T> PopResult<T> {
    /// The dequeued item, if any.
    pub fn item(self) -> Option<T> {
        match self {
            PopResult::Item(t) => Some(t),
            _ => None,
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with close-to-shutdown
/// semantics (see the [module docs](self)).
pub struct MpmcQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> MpmcQueue<T> {
    /// A queue holding at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        MpmcQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1 << 16)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued (items may arrive right after).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`close`](MpmcQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back as `Err` if the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while !inner.closed && inner.items.len() >= self.capacity {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` only if there is room right now; returns the
    /// item back inside a [`TryPushError`] saying *why* it was refused
    /// — full (transient) or closed (final).
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed *and*
    /// drained — items enqueued before the close are always delivered.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Like [`pop`](MpmcQueue::pop), but waits at most `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if inner.closed {
                return PopResult::Closed;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return PopResult::TimedOut;
            }
            let (guard, res) = self.not_empty.wait_timeout(inner, left).unwrap();
            inner = guard;
            if res.timed_out() && inner.items.is_empty() && !inner.closed {
                return PopResult::TimedOut;
            }
        }
    }

    /// Closes the queue and wakes every blocked producer and consumer.
    /// Already-queued items remain poppable; further pushes fail.
    /// Idempotent.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = MpmcQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_refuses_when_full() {
        let q = MpmcQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn try_push_distinguishes_full_from_closed() {
        let q = MpmcQueue::new(1);
        q.push(1).unwrap();
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
        q.close();
        assert_eq!(q.try_push(2), Err(TryPushError::Closed(2)));
        assert_eq!(TryPushError::Full(7).into_item(), 7);
        assert_eq!(TryPushError::Closed(8).into_item(), 8);
    }

    #[test]
    fn close_drains_then_signals() {
        let q = MpmcQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(8), Err(8));
        // The pre-close item is still delivered; then None forever.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Closed);
    }

    #[test]
    fn pop_timeout_times_out_when_open_and_empty() {
        let q: MpmcQueue<u32> = MpmcQueue::new(1);
        let t0 = Instant::now();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            PopResult::TimedOut
        );
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn close_wakes_blocked_consumers_and_producers() {
        let q = Arc::new(MpmcQueue::new(1));
        q.push(0u32).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Drain the one item, then block until close.
                let mut got = Vec::new();
                while let Some(x) = q.pop() {
                    got.push(x);
                }
                got
            })
        };
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Capacity 1 and maybe full: this either lands or is
                // refused at close; both terminate.
                q.push(1).is_ok()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let got = consumer.join().unwrap();
        let pushed = producer.join().unwrap();
        assert_eq!(got.len(), if pushed { 2 } else { 1 });
    }

    #[test]
    fn many_producers_many_consumers_deliver_exactly_once() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER: u64 = 500;
        let q = Arc::new(MpmcQueue::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.push(p * PER + i).unwrap();
                }
                0u64
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                let mut count = 0u64;
                while let Some(x) = q.pop() {
                    sum += x;
                    count += 1;
                }
                (sum, count)
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let (mut sum, mut count) = (0u64, 0u64);
        for c in consumers {
            let (s, n) = c.join().unwrap();
            sum += s;
            count += n;
        }
        let total = PRODUCERS as u64 * PER;
        assert_eq!(count, total);
        assert_eq!(sum, total * (total - 1) / 2);
    }
}

//! Concurrent bitmaps for frontier bookkeeping.
//!
//! Direction-optimizing BFS keeps its frontiers as bit vectors during
//! bottom-up sweeps: membership tests are one load + mask, and a whole
//! cache line answers 512 vertices. The words are `AtomicU64` grouped
//! into cache-line-aligned blocks so concurrent `set`s from different
//! threads touching different lines never false-share with the block
//! header of an adjacent allocation.
//!
//! Writes use `Relaxed` ordering: every use in this workspace publishes
//! the bits through a pool barrier before any other thread reads them,
//! which carries the necessary happens-before edge.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` words per cache line (64 B / 8 B).
const WORDS_PER_LINE: usize = 8;

/// A 64-byte-aligned block of bitmap words; the storage unit of
/// [`Bitmap`].
#[repr(align(64))]
#[derive(Default)]
struct Line([AtomicU64; WORDS_PER_LINE]);

/// A fixed-size concurrent bitmap over `0..len` bits.
///
/// ```
/// use bcc_smp::Bitmap;
///
/// let bm = Bitmap::new(200);
/// assert!(bm.test_and_set(64));
/// assert!(!bm.test_and_set(64)); // second setter loses
/// bm.set(130);
/// assert!(bm.test(64) && bm.test(130) && !bm.test(0));
/// assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![64, 130]);
/// assert_eq!(bm.count_ones(), 2);
/// ```
pub struct Bitmap {
    lines: Vec<Line>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64);
        let mut lines = Vec::new();
        lines.resize_with(words.div_ceil(WORDS_PER_LINE), Line::default);
        Bitmap { lines, len }
    }

    /// An all-zero bitmap of `len` bits whose line storage is taken
    /// from (and can be [`recycle`](Self::recycle)d back to) `ws`.
    pub fn new_in(len: usize, ws: &crate::workspace::BccWorkspace) -> Self {
        let words = len.div_ceil(64);
        let mut lines: Vec<Line> = ws.take(words.div_ceil(WORDS_PER_LINE));
        lines.resize_with(words.div_ceil(WORDS_PER_LINE), Line::default);
        Bitmap { lines, len }
    }

    /// Returns the line storage to `ws` for reuse.
    pub fn recycle(self, ws: &crate::workspace::BccWorkspace) {
        ws.give(self.lines);
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        let w = i / 64;
        &self.lines[w / WORDS_PER_LINE].0[w % WORDS_PER_LINE]
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        self.word(i).fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Sets bit `i` without an atomic read-modify-write (plain
    /// load-or-store). Only safe to race with nothing: use it from the
    /// single-threaded fill phase between pool barriers (e.g. rebuilding
    /// a frontier bitmap on the coordinating thread), where it is ~4×
    /// cheaper than the `lock or` of [`Bitmap::set`].
    #[inline]
    pub fn set_unsync(&self, i: usize) {
        debug_assert!(i < self.len);
        let w = self.word(i);
        w.store(w.load(Ordering::Relaxed) | 1 << (i % 64), Ordering::Relaxed);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.word(i).load(Ordering::Relaxed) >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`, returning `true` iff this call flipped it from 0
    /// to 1 (exactly one concurrent setter wins).
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1 << (i % 64);
        self.word(i).fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Clears every bit (call from one thread between barriers).
    pub fn clear(&self) {
        for line in &self.lines {
            for w in &line.0 {
                w.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.lines
            .iter()
            .flat_map(|l| l.0.iter())
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum()
    }

    /// Indices of the set bits, ascending, over the whole bitmap.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_ones_in(0..self.len)
    }

    /// Indices of the set bits within `range` (ascending) — lets each
    /// pool thread walk its own block of the bitmap word-at-a-time.
    pub fn iter_ones_in(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = usize> + '_ {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        let first_word = start / 64;
        let last_word = if end == 0 { 0 } else { end.div_ceil(64) };
        (first_word..last_word).flat_map(move |w| {
            let mut bits = self.word(w * 64).load(Ordering::Relaxed);
            // Mask off bits outside [start, end) in the edge words.
            if w == first_word {
                bits &= !0u64 << (start % 64);
            }
            if (w + 1) * 64 > end {
                bits &= (!0u64) >> ((64 - end % 64) % 64);
            }
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bitmap")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn set_test_roundtrip_across_words() {
        let bm = Bitmap::new(1000);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 511, 512, 999] {
            assert!(!bm.test(i));
            bm.set(i);
            assert!(bm.test(i));
        }
        assert_eq!(bm.count_ones(), 10);
    }

    #[test]
    fn set_unsync_matches_set() {
        let bm = Bitmap::new(300);
        for i in [0usize, 5, 63, 64, 192, 299] {
            bm.set_unsync(i);
            assert!(bm.test(i));
        }
        // Mixing with atomic sets on the same word keeps earlier bits.
        bm.set(6);
        assert!(bm.test(5) && bm.test(6));
        assert_eq!(bm.count_ones(), 7);
    }

    #[test]
    fn test_and_set_has_one_winner_per_bit() {
        let bm = Bitmap::new(4096);
        let pool = Pool::new(4);
        let wins: Vec<std::sync::atomic::AtomicU32> = (0..4096)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        pool.run(|_| {
            for (i, w) in wins.iter().enumerate() {
                if bm.test_and_set(i) {
                    w.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(wins.iter().all(|w| w.load(Ordering::Relaxed) == 1));
        assert_eq!(bm.count_ones(), 4096);
    }

    #[test]
    fn iter_ones_matches_set_bits() {
        let bm = Bitmap::new(777);
        let want: Vec<usize> = (0..777).filter(|i| i % 7 == 3).collect();
        for &i in &want {
            bm.set(i);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), want);
        assert_eq!(bm.count_ones() as usize, want.len());
    }

    #[test]
    fn iter_ones_in_respects_subrange_boundaries() {
        let bm = Bitmap::new(300);
        for i in 0..300 {
            bm.set(i);
        }
        for (a, b) in [(0, 300), (0, 0), (5, 64), (63, 65), (64, 128), (100, 259)] {
            let got: Vec<usize> = bm.iter_ones_in(a..b).collect();
            let want: Vec<usize> = (a..b).collect();
            assert_eq!(got, want, "range {a}..{b}");
        }
    }

    #[test]
    fn subranges_tile_the_whole_iteration() {
        let bm = Bitmap::new(1031);
        let want: Vec<usize> = (0..1031).filter(|i| i % 3 == 0).collect();
        for &i in &want {
            bm.set(i);
        }
        let mut got = vec![];
        for t in 0..5 {
            got.extend(bm.iter_ones_in(crate::pool::block_range(t, 5, 1031)));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn clear_resets() {
        let bm = Bitmap::new(100);
        bm.set(5);
        bm.set(99);
        bm.clear();
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.iter_ones().next().is_none());
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.iter_ones().next().is_none());
    }
}

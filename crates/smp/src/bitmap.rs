//! Concurrent bitmaps for frontier bookkeeping.
//!
//! Direction-optimizing BFS keeps its frontiers as bit vectors during
//! bottom-up sweeps: membership tests are one load + mask, and a whole
//! cache line answers 512 vertices. The words are `AtomicU64` grouped
//! into cache-line-aligned blocks so concurrent `set`s from different
//! threads touching different lines never false-share with the block
//! header of an adjacent allocation.
//!
//! Writes use `Relaxed` ordering: every use in this workspace publishes
//! the bits through a pool barrier before any other thread reads them,
//! which carries the necessary happens-before edge.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` words per cache line (64 B / 8 B).
const WORDS_PER_LINE: usize = 8;

/// A 64-byte-aligned block of bitmap words; the storage unit of
/// [`Bitmap`].
#[repr(align(64))]
#[derive(Default)]
struct Line([AtomicU64; WORDS_PER_LINE]);

/// A fixed-size concurrent bitmap over `0..len` bits.
///
/// ```
/// use bcc_smp::Bitmap;
///
/// let bm = Bitmap::new(200);
/// assert!(bm.test_and_set(64));
/// assert!(!bm.test_and_set(64)); // second setter loses
/// bm.set(130);
/// assert!(bm.test(64) && bm.test(130) && !bm.test(0));
/// assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![64, 130]);
/// assert_eq!(bm.count_ones(), 2);
/// ```
pub struct Bitmap {
    lines: Vec<Line>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64);
        let mut lines = Vec::new();
        lines.resize_with(words.div_ceil(WORDS_PER_LINE), Line::default);
        Bitmap { lines, len }
    }

    /// An all-zero bitmap of `len` bits whose line storage is taken
    /// from (and can be [`recycle`](Self::recycle)d back to) `ws`.
    pub fn new_in(len: usize, ws: &crate::workspace::BccWorkspace) -> Self {
        let words = len.div_ceil(64);
        let mut lines: Vec<Line> = ws.take(words.div_ceil(WORDS_PER_LINE));
        lines.resize_with(words.div_ceil(WORDS_PER_LINE), Line::default);
        Bitmap { lines, len }
    }

    /// Returns the line storage to `ws` for reuse.
    pub fn recycle(self, ws: &crate::workspace::BccWorkspace) {
        ws.give(self.lines);
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of 64-bit words backing the bitmap (`ceil(len / 64)`).
    #[inline]
    pub fn words(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// True if the bitmap holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        let w = i / 64;
        &self.lines[w / WORDS_PER_LINE].0[w % WORDS_PER_LINE]
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        self.word(i).fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Sets bit `i` without an atomic read-modify-write (plain
    /// load-or-store). Only safe to race with nothing: use it from the
    /// single-threaded fill phase between pool barriers (e.g. rebuilding
    /// a frontier bitmap on the coordinating thread), where it is ~4×
    /// cheaper than the `lock or` of [`Bitmap::set`].
    #[inline]
    pub fn set_unsync(&self, i: usize) {
        debug_assert!(i < self.len);
        let w = self.word(i);
        w.store(w.load(Ordering::Relaxed) | 1 << (i % 64), Ordering::Relaxed);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.word(i).load(Ordering::Relaxed) >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`, returning `true` iff this call flipped it from 0
    /// to 1 (exactly one concurrent setter wins).
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1 << (i % 64);
        self.word(i).fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Clears every bit (call from one thread between barriers).
    pub fn clear(&self) {
        for line in &self.lines {
            for w in &line.0 {
                w.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Loads word `w` (bits `w*64 .. w*64+64`) in one read.
    #[inline]
    pub fn load_word(&self, w: usize) -> u64 {
        self.lines[w / WORDS_PER_LINE].0[w % WORDS_PER_LINE].load(Ordering::Relaxed)
    }

    /// Stores word `w` wholesale with a plain (non-RMW) store. Like
    /// [`set_unsync`](Self::set_unsync) this is only safe to race with
    /// nothing: call it when this thread owns the word outright (e.g. a
    /// word-partitioned flag pass between pool barriers). Bits past
    /// `len` in the final word must be zero — debug-asserted here — or
    /// the popcount kernels would overcount.
    #[inline]
    pub fn store_word_unsync(&self, w: usize, bits: u64) {
        debug_assert!(
            w + 1 < self.words() || self.len.is_multiple_of(64) || bits >> (self.len % 64) == 0,
            "store_word_unsync: bits set past the bitmap length"
        );
        self.lines[w / WORDS_PER_LINE].0[w % WORDS_PER_LINE].store(bits, Ordering::Relaxed);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.lines
            .iter()
            .flat_map(|l| l.0.iter())
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum()
    }

    /// The word `range` (for [`load_word`](Self::load_word) /
    /// [`for_each_one_in`](Self::for_each_one_in)) covering bit range
    /// `bits`, clamped to the bitmap: word-aligned work partitioning in
    /// one place, so each pool thread owns whole words and bulk stores
    /// never straddle another thread's bits.
    #[inline]
    pub fn word_range_of(bits: std::ops::Range<usize>) -> std::ops::Range<usize> {
        bits.start / 64..bits.end.div_ceil(64)
    }

    /// Number of set bits within the bit range `range`, one `popcnt`
    /// per word with the edge words masked.
    pub fn count_ones_in(&self, range: std::ops::Range<usize>) -> u64 {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        if start >= end {
            return 0;
        }
        let mut total = 0u64;
        for w in start / 64..end.div_ceil(64) {
            total += u64::from(self.masked_word(w, start, end).count_ones());
        }
        total
    }

    /// Word `w` with bits outside `[start, end)` cleared.
    #[inline]
    fn masked_word(&self, w: usize, start: usize, end: usize) -> u64 {
        let mut bits = self.load_word(w);
        if w == start / 64 {
            bits &= !0u64 << (start % 64);
        }
        if (w + 1) * 64 > end {
            bits &= (!0u64) >> ((64 - end % 64) % 64);
        }
        bits
    }

    /// Calls `f(i)` for every set bit `i`, ascending. Word-skipping:
    /// zero words cost one load + one branch for 64 bits, and set bits
    /// are peeled with `trailing_zeros` + clear-lowest — no per-bit
    /// iterator state. Measurably faster than draining
    /// [`iter_ones`](Self::iter_ones) on both sparse and dense bitmaps;
    /// the bulk-kernel form the compaction scatter and the bottom-up
    /// BFS sweep are built on.
    #[inline]
    pub fn for_each_one(&self, f: impl FnMut(usize)) {
        self.for_each_one_in(0..self.len, f);
    }

    /// [`for_each_one`](Self::for_each_one) restricted to the bit range
    /// `range` — each pool thread walks its own block word-at-a-time.
    #[inline]
    pub fn for_each_one_in(&self, range: std::ops::Range<usize>, mut f: impl FnMut(usize)) {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        if start >= end {
            return;
        }
        for w in start / 64..end.div_ceil(64) {
            let mut bits = self.masked_word(w, start, end);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(w * 64 + b);
            }
        }
    }

    /// Sets every bit in `range` with whole-word stores (edge words via
    /// read-modify-write of this thread's own view). Unsynchronized:
    /// the caller must own every *word* the range touches — partition
    /// with [`word_range_of`](Self::word_range_of) so range boundaries
    /// fall on word boundaries, or fill from a single thread.
    pub fn fill_range_unsync(&self, range: std::ops::Range<usize>) {
        self.bulk_range_unsync(range, true);
    }

    /// Clears every bit in `range`; same ownership contract as
    /// [`fill_range_unsync`](Self::fill_range_unsync).
    pub fn clear_range_unsync(&self, range: std::ops::Range<usize>) {
        self.bulk_range_unsync(range, false);
    }

    fn bulk_range_unsync(&self, range: std::ops::Range<usize>, value: bool) {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        if start >= end {
            return;
        }
        for w in start / 64..end.div_ceil(64) {
            // Mask of the range's bits within this word.
            let mut mask = !0u64;
            if w == start / 64 {
                mask &= !0u64 << (start % 64);
            }
            if (w + 1) * 64 > end {
                mask &= (!0u64) >> ((64 - end % 64) % 64);
            }
            let old = self.load_word(w);
            let new = if value { old | mask } else { old & !mask };
            self.lines[w / WORDS_PER_LINE].0[w % WORDS_PER_LINE].store(new, Ordering::Relaxed);
        }
    }

    /// Indices of the set bits, ascending, over the whole bitmap.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_ones_in(0..self.len)
    }

    /// Indices of the set bits within `range` (ascending) — lets each
    /// pool thread walk its own block of the bitmap word-at-a-time.
    pub fn iter_ones_in(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = usize> + '_ {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        let first_word = start / 64;
        let last_word = if end == 0 { 0 } else { end.div_ceil(64) };
        (first_word..last_word).flat_map(move |w| {
            let mut bits = self.word(w * 64).load(Ordering::Relaxed);
            // Mask off bits outside [start, end) in the edge words.
            if w == first_word {
                bits &= !0u64 << (start % 64);
            }
            if (w + 1) * 64 > end {
                bits &= (!0u64) >> ((64 - end % 64) % 64);
            }
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bitmap")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn set_test_roundtrip_across_words() {
        let bm = Bitmap::new(1000);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 511, 512, 999] {
            assert!(!bm.test(i));
            bm.set(i);
            assert!(bm.test(i));
        }
        assert_eq!(bm.count_ones(), 10);
    }

    #[test]
    fn set_unsync_matches_set() {
        let bm = Bitmap::new(300);
        for i in [0usize, 5, 63, 64, 192, 299] {
            bm.set_unsync(i);
            assert!(bm.test(i));
        }
        // Mixing with atomic sets on the same word keeps earlier bits.
        bm.set(6);
        assert!(bm.test(5) && bm.test(6));
        assert_eq!(bm.count_ones(), 7);
    }

    #[test]
    fn test_and_set_has_one_winner_per_bit() {
        let bm = Bitmap::new(4096);
        let pool = Pool::new(4);
        let wins: Vec<std::sync::atomic::AtomicU32> = (0..4096)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        pool.run(|_| {
            for (i, w) in wins.iter().enumerate() {
                if bm.test_and_set(i) {
                    w.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(wins.iter().all(|w| w.load(Ordering::Relaxed) == 1));
        assert_eq!(bm.count_ones(), 4096);
    }

    #[test]
    fn iter_ones_matches_set_bits() {
        let bm = Bitmap::new(777);
        let want: Vec<usize> = (0..777).filter(|i| i % 7 == 3).collect();
        for &i in &want {
            bm.set(i);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), want);
        assert_eq!(bm.count_ones() as usize, want.len());
    }

    #[test]
    fn iter_ones_in_respects_subrange_boundaries() {
        let bm = Bitmap::new(300);
        for i in 0..300 {
            bm.set(i);
        }
        for (a, b) in [(0, 300), (0, 0), (5, 64), (63, 65), (64, 128), (100, 259)] {
            let got: Vec<usize> = bm.iter_ones_in(a..b).collect();
            let want: Vec<usize> = (a..b).collect();
            assert_eq!(got, want, "range {a}..{b}");
        }
    }

    #[test]
    fn subranges_tile_the_whole_iteration() {
        let bm = Bitmap::new(1031);
        let want: Vec<usize> = (0..1031).filter(|i| i % 3 == 0).collect();
        for &i in &want {
            bm.set(i);
        }
        let mut got = vec![];
        for t in 0..5 {
            got.extend(bm.iter_ones_in(crate::pool::block_range(t, 5, 1031)));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn for_each_one_matches_iter_ones_on_ranges() {
        let bm = Bitmap::new(1031);
        for i in (0..1031).filter(|i| i % 5 == 2 || i % 97 == 0) {
            bm.set(i);
        }
        for (a, b) in [
            (0, 1031),
            (0, 0),
            (5, 64),
            (63, 65),
            (64, 128),
            (100, 259),
            (1000, 2000),
        ] {
            let mut got = vec![];
            bm.for_each_one_in(a..b, |i| got.push(i));
            let want: Vec<usize> = bm.iter_ones_in(a..b).collect();
            assert_eq!(got, want, "range {a}..{b}");
            assert_eq!(bm.count_ones_in(a..b), want.len() as u64, "range {a}..{b}");
        }
        let mut all = vec![];
        bm.for_each_one(|i| all.push(i));
        assert_eq!(all, bm.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn word_access_roundtrip() {
        let bm = Bitmap::new(200);
        bm.store_word_unsync(1, 0b1011);
        assert!(bm.test(64) && !bm.test(66) && bm.test(67));
        assert_eq!(bm.load_word(1), 0b1011);
        assert_eq!(bm.words(), 4);
        assert_eq!(Bitmap::word_range_of(5..130), 0..3);
        assert_eq!(Bitmap::word_range_of(64..128), 1..2);
    }

    #[test]
    fn fill_and_clear_ranges() {
        let bm = Bitmap::new(300);
        bm.fill_range_unsync(10..200);
        assert_eq!(bm.count_ones(), 190);
        assert!(!bm.test(9) && bm.test(10) && bm.test(199) && !bm.test(200));
        bm.clear_range_unsync(63..129);
        assert_eq!(bm.count_ones(), 190 - (129 - 63));
        assert!(bm.test(62) && !bm.test(63) && !bm.test(128) && bm.test(129));
        // Ranges past the end are clamped.
        bm.fill_range_unsync(290..400);
        assert!(bm.test(299));
        bm.clear_range_unsync(0..10_000);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn word_partitioned_parallel_fill_is_race_free() {
        let n = 4099;
        let bm = Bitmap::new(n);
        let pool = Pool::new(4);
        pool.run(|ctx| {
            // Word-aligned ownership: each thread stores whole words.
            let words = Bitmap::word_range_of(0..n);
            let my = ctx.block_range_of(words);
            for w in my {
                let hi = (w * 64 + 64).min(n);
                let mut bits = 0u64;
                for i in w * 64..hi {
                    if i % 3 == 0 {
                        bits |= 1 << (i % 64);
                    }
                }
                bm.store_word_unsync(w, bits);
            }
        });
        let want: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
        assert_eq!(bm.count_ones() as usize, want.len());
        let mut got = vec![];
        bm.for_each_one(|i| got.push(i));
        assert_eq!(got, want);
    }

    #[test]
    fn clear_resets() {
        let bm = Bitmap::new(100);
        bm.set(5);
        bm.set(99);
        bm.clear();
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.iter_ones().next().is_none());
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.iter_ones().next().is_none());
    }
}

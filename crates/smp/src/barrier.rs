//! A sense-reversing centralized software barrier.
//!
//! The paper's implementation uses "POSIX threads and software-based
//! barriers" (§5). A sense-reversing barrier is the textbook software
//! barrier for small SMPs: one shared counter, one shared sense flag, and
//! a thread-local sense that flips at every episode, so the barrier can be
//! reused without re-initialization.
//!
//! Threads spin with exponential backoff and eventually yield to the OS,
//! which keeps the barrier correct (if slow) even when the machine is
//! oversubscribed, as happens when benchmarks sweep thread counts past the
//! physical core count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable sense-reversing barrier for a fixed number of participants.
pub struct Barrier {
    /// Number of threads that must arrive per episode.
    parties: usize,
    /// Count of threads still expected in the current episode.
    remaining: AtomicUsize,
    /// Global sense; flipped by the last arriver of each episode.
    sense: AtomicBool,
}

impl Barrier {
    /// Creates a barrier for `parties` threads. `parties` must be >= 1.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one participant");
        Barrier {
            parties,
            remaining: AtomicUsize::new(parties),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    #[inline]
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` threads have called `wait`.
    ///
    /// `local_sense` is per-thread state that the caller must thread
    /// through successive episodes; see [`SenseToken`] for a convenient
    /// wrapper. Returns `true` for exactly one thread per episode (the
    /// last arriver), mirroring `std::sync::Barrier`'s leader result.
    pub fn wait(&self, local_sense: &mut bool) -> bool {
        // Flip the sense we will wait for *this* episode.
        *local_sense = !*local_sense;
        let my_sense = *local_sense;

        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the counter, then release the episode.
            self.remaining.store(self.parties, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                backoff(&mut spins);
            }
            false
        }
    }
}

/// Per-thread barrier sense, so call sites don't juggle a raw `bool`.
#[derive(Default)]
pub struct SenseToken {
    sense: bool,
}

impl SenseToken {
    /// Creates a token with the initial sense expected by a fresh
    /// [`Barrier`].
    pub fn new() -> Self {
        SenseToken { sense: false }
    }

    /// Waits on `barrier`; returns `true` for the episode leader.
    #[inline]
    pub fn wait(&mut self, barrier: &Barrier) -> bool {
        barrier.wait(&mut self.sense)
    }
}

/// Spin with escalating politeness: busy hint, then `yield_now`.
///
/// On an oversubscribed machine (more threads than cores) the yield path
/// is essential: a pure spin would deadlock-by-livelock the thread whose
/// core is needed to finish the episode.
#[inline]
pub fn backoff(spins: &mut u32) {
    if *spins < 64 {
        std::hint::spin_loop();
        *spins += 1;
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_barrier_is_instant_leader() {
        let b = Barrier::new(1);
        let mut tok = SenseToken::new();
        for _ in 0..100 {
            assert!(tok.wait(&b));
        }
    }

    #[test]
    fn phases_are_ordered_across_threads() {
        // Each of T threads increments a phase counter between barriers;
        // after every barrier, all threads must observe the same phase sum.
        const T: usize = 4;
        const PHASES: usize = 200;
        let barrier = Barrier::new(T);
        let counter = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..T {
                s.spawn(|| {
                    let mut tok = SenseToken::new();
                    for phase in 1..=PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        tok.wait(&barrier);
                        // All T increments of this phase must be visible.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= phase * T, "phase {phase}: saw {seen}");
                        tok.wait(&barrier);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), T * PHASES);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const T: usize = 8;
        const EPISODES: usize = 50;
        let barrier = Barrier::new(T);
        let leaders = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..T {
                s.spawn(|| {
                    let mut tok = SenseToken::new();
                    for _ in 0..EPISODES {
                        if tok.wait(&barrier) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), EPISODES);
    }

    #[test]
    #[should_panic]
    fn zero_parties_rejected() {
        let _ = Barrier::new(0);
    }
}

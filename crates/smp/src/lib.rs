#![warn(missing_docs)]
//! SPMD execution substrate for the `smp-bcc` workspace.
//!
//! The algorithms in Cong & Bader's IPDPS 2005 study are written in the
//! classic SMP style: `p` POSIX threads execute the *same* program over
//! block-partitioned index ranges, separated by software barriers. This
//! crate reproduces that model:
//!
//! * [`Pool`] — runs an SPMD closure on `p` threads.
//! * [`Ctx`] — per-thread view (thread id, thread count, barrier,
//!   block-partition helpers).
//! * [`Barrier`] — a sense-reversing centralized software barrier, the
//!   same construction the paper's implementation uses.
//! * [`shared`] — disjoint-write shared slices, the unsafe-but-audited
//!   idiom that replaces the paper's unconstrained C pointers.
//! * [`atomic`] — reinterpreting `&mut [u32]` as `&[AtomicU32]` for
//!   CAS-based phases (grafting, BFS claiming).
//! * [`dynamic`] — a shared chunk counter for dynamically scheduled
//!   loops (load balancing irregular frontiers), with degree-aware
//!   weighted chunking for skewed index spaces.
//! * [`bitmap`] — cache-line-aligned atomic bitmaps (bottom-up BFS
//!   frontiers).
//! * [`queue`] — a bounded MPMC work queue with a shutdown signal, the
//!   hand-off channel between the serving layer's free-running reader
//!   and writer threads (which are *not* SPMD phases).
//! * [`telemetry`] — opt-in per-thread counters (barrier wait, busy
//!   time, phase counts, snapshot lag) for attributing parallel
//!   overhead and serving staleness.
//! * [`workspace`] — a typed reusable-buffer arena so steady-state
//!   repeated runs perform near-zero heap allocation.
//!
//! # Example
//!
//! ```
//! use bcc_smp::Pool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = Pool::new(4);
//! let data: Vec<u64> = (0..10_000).collect();
//! let total = AtomicU64::new(0);
//! pool.run(|ctx| {
//!     let range = ctx.block_range(data.len());
//!     let local: u64 = data[range].iter().sum();
//!     total.fetch_add(local, Ordering::Relaxed);
//!     ctx.barrier();
//! });
//! assert_eq!(total.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
//! ```

pub mod atomic;
pub mod barrier;
pub mod bitmap;
pub mod dynamic;
pub mod pool;
pub mod queue;
pub mod rss;
pub mod shared;
pub mod telemetry;
pub mod workspace;

pub use barrier::Barrier;
pub use bitmap::Bitmap;
pub use dynamic::ChunkCounter;
pub use pool::{Ctx, Pool, PoolBuilder};
pub use queue::{MpmcQueue, PopResult, TryPushError};
pub use shared::SharedSlice;
pub use telemetry::{Telemetry, TelemetrySnapshot};
pub use workspace::{BccWorkspace, CountingAlloc, WorkspaceStats};

/// Sentinel used throughout the workspace for "no vertex / no index".
pub const NIL: u32 = u32::MAX;
